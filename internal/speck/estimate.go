package speck

import (
	"fmt"
	"math"

	"repro/internal/accum"
	"repro/internal/csr"
)

// Mode selects the symbolic strategy of a multiply. The exact mode is
// the classic two-phase pipeline (a full symbolic pass sizes the
// output before any value is accumulated); the estimate mode elides
// that pass behind a sampled output-size estimator in the style of
// Ocean (fast estimation + over-allocation + compaction), producing an
// output that is bit-for-bit identical to the exact path; auto picks
// estimation only when a multiply is large enough to amortize it.
type Mode int

const (
	// ModeExact runs the exact symbolic phase (the default; byte-stable
	// with every earlier build).
	ModeExact Mode = iota
	// ModeEstimate replaces the symbolic phase with the sampled
	// estimator wherever the row-level confidence gate allows it.
	ModeEstimate
	// ModeAuto estimates only multiplies whose flop count clears
	// EstimatorConfig.AutoFlopsMin; small products stay exact (the
	// estimator's fixed costs would dominate them).
	ModeAuto
)

func (m Mode) String() string {
	switch m {
	case ModeEstimate:
		return "estimate"
	case ModeAuto:
		return "auto"
	default:
		return "exact"
	}
}

// ParseMode parses the CLI spelling of a symbolic mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "exact":
		return ModeExact, nil
	case "estimate":
		return ModeEstimate, nil
	case "auto":
		return ModeAuto, nil
	}
	return ModeExact, fmt.Errorf("speck: unknown symbolic mode %q (want exact, estimate or auto)", s)
}

// Estimates resolves the mode against a multiply's flop count: the
// answer for ModeAuto, constant for the other two.
func (m Mode) Estimates(flops int64, cfg EstimatorConfig) bool {
	switch m {
	case ModeEstimate:
		return true
	case ModeAuto:
		return flops >= cfg.WithDefaults().AutoFlopsMin
	}
	return false
}

// EstimatorConfig tunes the sampled row-nnz estimator. The zero value
// selects the defaults; tests exercise the extremes (a negative
// SpreadGate forces every gated row onto the exact-symbolic fallback,
// a tiny Safety forces the overflow/compaction path).
type EstimatorConfig struct {
	// SampleK is how many of a row's contributing B-rows are sampled
	// (deterministic stride, no RNG — chaos runs must replay exactly).
	// 0 means 8.
	SampleK int
	// Safety multiplies the estimated row nnz into the allocated row
	// capacity. 0 means 1.5.
	Safety float64
	// SpreadGate is the per-row confidence threshold: when the largest
	// sampled B-row nnz exceeds SpreadGate x the sampled mean, the
	// row's contribution is too skewed for the uniform-scatter estimate
	// and the row falls back to exact symbolic counting. 0 means 8;
	// negative forces fallback for every sampled row.
	SpreadGate float64
	// ExactBelow short-circuits rows whose upper bound is at most this
	// many non-zeros: their capacity is the (cheap, exact) upper bound
	// itself, which can never overflow. 0 means 32; negative disables
	// the shortcut.
	ExactBelow int64
	// AutoFlopsMin is ModeAuto's threshold: multiplies below it stay
	// exact. 0 means 2 Mflops.
	AutoFlopsMin int64
}

// WithDefaults resolves zero fields to the default estimator.
func (c EstimatorConfig) WithDefaults() EstimatorConfig {
	if c.SampleK <= 0 {
		c.SampleK = 8
	}
	if c.Safety <= 0 {
		c.Safety = 1.5
	}
	if c.SpreadGate == 0 {
		c.SpreadGate = 8
	}
	if c.ExactBelow == 0 {
		c.ExactBelow = 32
	}
	if c.AutoFlopsMin <= 0 {
		c.AutoFlopsMin = 2 << 20
	}
	return c
}

// EstStats counts what the estimation path did: how many non-empty
// output rows were sized from the estimator, how many fell back to
// exact symbolic counting, and how many estimated rows overflowed
// their allocated capacity (served through the spill path; the output
// is still exact). The estimation hit rate surfaced by /metricsz is
// EstimatedRows / (EstimatedRows + FallbackRows).
type EstStats struct {
	EstimatedRows int64
	FallbackRows  int64
	OverflowRows  int64
}

// RowEstimate is the estimator's per-row output for one operand pair.
type RowEstimate struct {
	// Caps is the allocated output capacity per row: the safety-scaled
	// estimate for estimated rows, the exact upper bound for rows under
	// the ExactBelow shortcut, and 0 for fallback rows (the caller
	// fills those from an exact symbolic count).
	Caps []int64
	// Est is the estimated output nnz per row (the work-class binning
	// signal), filled for every non-empty row including fallbacks.
	Est []int64
	// Fallback marks rows the confidence gate sent to exact symbolic.
	Fallback []bool
	// EstimatedRows and FallbackRows partition the non-empty rows.
	EstimatedRows, FallbackRows int64
	// CapTotal sums Caps (fallback rows excluded until counted).
	CapTotal int64
	// EstTotal sums Est over all non-empty rows — the cheap total
	// output-size estimate the grid planner consumes.
	EstTotal int64
}

// ExpectedDistinct is the balls-in-bins collision correction: throwing
// `products` candidate columns uniformly at `width` slots yields
// width*(1-(1-1/width)^products) expected distinct columns. Skewed
// column distributions produce fewer distinct columns than uniform
// ones, so the uniform assumption errs toward over-allocation — the
// safe direction. Clamped to [1, min(products, width)].
func ExpectedDistinct(width, products int64) int64 {
	if width <= 0 || products <= 0 {
		return 0
	}
	if width == 1 {
		return 1
	}
	w := float64(width)
	e := w * -math.Expm1(float64(products)*math.Log1p(-1/w))
	n := int64(math.Ceil(e))
	if n < 1 {
		n = 1
	}
	if n > products {
		n = products
	}
	if n > width {
		n = width
	}
	return n
}

// EstimateRows runs the sampled row-nnz estimator: for each row of A
// it samples SampleK of the contributing B-rows at a deterministic
// stride, gates on the sampled nnz spread (a hub B-row in the sample
// means the uniform-scatter model is unreliable → exact fallback), and
// otherwise sizes the row from the collision-corrected estimate times
// the safety factor. ub is the exact per-row upper bound (RowFlops/2),
// which every cap is clamped to — estimation can over-allocate but
// never beyond the worst case. The scan is O(nnz(A) / stride) after
// the row-analysis pass, independent of the flop count the exact
// symbolic phase pays.
func EstimateRows(a, b *csr.Matrix, ub []int64, cfg EstimatorConfig) *RowEstimate {
	cfg = cfg.WithDefaults()
	re := &RowEstimate{
		Caps:     make([]int64, a.Rows),
		Est:      make([]int64, a.Rows),
		Fallback: make([]bool, a.Rows),
	}
	width := int64(b.Cols)
	for i := 0; i < a.Rows; i++ {
		if ub[i] == 0 {
			continue
		}
		est := ExpectedDistinct(width, ub[i])
		re.Est[i] = est
		re.EstTotal += est
		if cfg.ExactBelow >= 0 && ub[i] <= cfg.ExactBelow {
			// Small row: the exact bound is already tiny, allocate it
			// outright — cheap, and overflow-proof by construction.
			re.Caps[i] = ub[i]
			re.CapTotal += ub[i]
			re.EstimatedRows++
			continue
		}
		// Deterministic stride sample of the contributing B-row sizes.
		off, end := a.RowOffsets[i], a.RowOffsets[i+1]
		d := end - off
		stride := d / int64(cfg.SampleK)
		if stride < 1 {
			stride = 1
		}
		var sum, mx int64
		var n int64
		for p := off; p < end && n < int64(cfg.SampleK); p += stride {
			nnz := b.RowNnz(int(a.ColIDs[p]))
			sum += nnz
			if nnz > mx {
				mx = nnz
			}
			n++
		}
		mean := float64(sum) / float64(n)
		if cfg.SpreadGate < 0 || (mean > 0 && float64(mx) > cfg.SpreadGate*mean) {
			// Confidence gate: the sample saw a hub row (or the caller
			// forced the extreme) — size this row exactly.
			re.Fallback[i] = true
			re.FallbackRows++
			continue
		}
		cap := int64(math.Ceil(float64(est)*cfg.Safety)) + 8
		if cap > ub[i] {
			cap = ub[i]
		}
		if cap > width {
			cap = width
		}
		re.Caps[i] = cap
		re.CapTotal += cap
		re.EstimatedRows++
	}
	return re
}

// EstimateTotalNnz is the planner's entry point: a cheap estimate of
// nnz(A·B) from the collision-corrected per-row bounds, with no
// symbolic pass at all — O(nnz(A)) against ClassifyFlops's O(flops).
// It over-estimates skewed products (the safe direction for sizing
// chunk grids); callers that need the exact count run ClassifyFlops.
func EstimateTotalNnz(a, b *csr.Matrix, cfg EstimatorConfig) int64 {
	ub := csr.RowUpperBounds(a, b)
	width := int64(b.Cols)
	var total int64
	for i := range ub {
		total += ExpectedDistinct(width, ub[i])
	}
	_ = cfg
	return total
}

// EstimatedSymbolicFraction models the simulated device cost of the
// elided symbolic phase: sampling plus compaction in place of the full
// symbolic kernels, as a fraction of the exact symbolic duration. Only
// estimation-mode runs see it; the Symbolic cached for a pattern keeps
// exact-model durations so warm replays are mode-independent.
const EstimatedSymbolicFraction = 0.15

// ListClassMax, denseClassCR and bitmapScanDiv bin rows into the three
// work classes of the adaptive numeric phase: rows expected to stay
// tiny use the linear-scan list accumulator; rows whose flops revisit
// each output slot denseClassCR times (the same compression rule as
// denseCRThreshold) or whose estimated output is at least
// width/bitmapScanDiv use the bitmap-dense accumulator — its sort-free
// ascending-bit flush costs width/64 word reads, so it amortizes once
// the row holds one output per bitmapScanDiv/64 words; everything else
// (sparse rows in very wide panels) uses a hash table pre-sized from
// the estimate.
const (
	// ListClassMax is the largest estimated row nnz served by the list
	// accumulator.
	ListClassMax  = 24
	denseClassCR  = denseCRThreshold
	bitmapScanDiv = 256
)

// PickClass selects the accumulator work class for one row from its
// estimated output size and flop count. Every class accumulates
// same-column products in first-touch insertion order and flushes
// sorted, so the class choice never changes the output bits.
type Class int

const (
	// ListClass rows use the linear-scan list accumulator.
	ListClass Class = iota
	// HashClass rows use a hash table pre-sized from the estimate.
	HashClass
	// DenseClass rows use the bitmap-dense accumulator (sort-free
	// sorted flush via an ascending bit scan).
	DenseClass
)

// PickClass bins one row. estNnz is the row's estimated (or exactly
// counted, for fallback rows) output size.
func PickClass(rowFlops, estNnz, width int64) Class {
	if estNnz <= ListClassMax {
		return ListClass
	}
	if rowFlops >= denseClassCR*estNnz || estNnz >= width/bitmapScanDiv {
		return DenseClass
	}
	return HashClass
}

// ComputeEstimated multiplies an A row panel by a B column panel with
// the estimation-based symbolic elision: no exact symbolic phase runs
// up front; instead the sampled estimator sizes per-row buffers
// (fallback rows are counted exactly), one adaptive numeric pass
// accumulates directly into them, and the exact structure is read off
// the accumulators as a by-product. The returned product and Symbolic
// are bit-for-bit identical to Compute/SymbolicCompute — the Symbolic
// keeps exact-cost-model durations and is interchangeable in the plan
// cache — while the Result's simulated SymbolicSec shrinks to
// EstimatedSymbolicFraction of the exact kernel time.
func ComputeEstimated(a, b *csr.Matrix, cm CostModel, cfg EstimatorConfig) (*Result, *Symbolic, EstStats, error) {
	if a.Cols != b.Rows {
		return nil, nil, EstStats{}, fmt.Errorf("speck: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	cfg = cfg.WithDefaults()
	sym := &Symbolic{
		Rows:        a.Rows,
		ACols:       a.Cols,
		Cols:        b.Cols,
		RowFlops:    csr.RowFlops(a, b),
		UpperBounds: csr.RowUpperBounds(a, b),
	}
	est := EstimateRows(a, b, sym.UpperBounds, cfg)
	stats := EstStats{EstimatedRows: est.EstimatedRows, FallbackRows: est.FallbackRows}

	capTotal := est.CapTotal
	if est.FallbackRows > 0 {
		// Exact symbolic counting, but only for the gated rows.
		hash := accum.NewHash(64)
		for r := 0; r < a.Rows; r++ {
			if !est.Fallback[r] {
				continue
			}
			ac, _ := a.Row(r)
			for _, k := range ac {
				bc, _ := b.Row(int(k))
				for _, col := range bc {
					hash.AddSymbolic(col)
				}
			}
			est.Caps[r] = int64(hash.FlushSymbolic())
			capTotal += est.Caps[r]
		}
	}

	// One adaptive numeric pass: accumulate values directly, reading
	// the exact structure out of the flush. Work classes come from the
	// estimates; every class sums in first-touch insertion order, so
	// the bits match the exact path regardless of the class picked.
	width := int64(b.Cols)
	rowNnz := make([]int64, a.Rows)
	colIDs := make([]int32, 0, capTotal)
	data := make([]float64, 0, capTotal)
	var hash *accum.Hash
	var dense *accum.Bitmap
	var list *accum.List
	for r := 0; r < a.Rows; r++ {
		if sym.UpperBounds[r] == 0 {
			continue
		}
		estN := est.Est[r]
		if est.Fallback[r] {
			estN = est.Caps[r]
		}
		var acc accum.Accumulator
		switch PickClass(sym.RowFlops[r], estN, width) {
		case ListClass:
			if list == nil {
				list = accum.NewList(ListClassMax)
			}
			acc = list
		case DenseClass:
			if dense == nil {
				dense = accum.NewBitmap(b.Cols)
			}
			acc = dense
		default:
			if hash == nil {
				hash = accum.NewHash(16)
			}
			capi := est.Caps[r]
			if capi > width {
				capi = width
			}
			hash.Grow(int(capi))
			acc = hash
		}
		ac, av := a.Row(r)
		for p := range ac {
			bc, bv := b.Row(int(ac[p]))
			for q := range bc {
				acc.Add(bc[q], av[p]*bv[q])
			}
		}
		n := int64(acc.Len())
		if !est.Fallback[r] && n > est.Caps[r] {
			stats.OverflowRows++ // append below regrows past the estimate
		}
		rowNnz[r] = n
		colIDs, data = acc.Flush(colIDs, data)
	}
	sym.ColIDs = colIDs
	finalizeSymbolic(sym, rowNnz, b.Cols, cm)

	c := &csr.Matrix{
		Rows:       sym.Rows,
		Cols:       sym.Cols,
		RowOffsets: sym.RowOffsets,
		ColIDs:     sym.ColIDs,
		Data:       data,
	}
	res := resultFrom(sym, c)
	res.SymbolicSec *= EstimatedSymbolicFraction
	return res, sym, stats, nil
}
