package speck

import (
	"math/rand"
	"testing"

	"repro/internal/csr"
	"repro/internal/gpusim"
	"repro/internal/matgen"
	"repro/internal/partition"
)

func model() CostModel {
	return ModelFromDevice(gpusim.V100Config())
}

// seqRef is a naive sequential Gustavson reference (map accumulator).
// cpuspgemm.Sequential is the repository-wide ground truth, but this
// package sits below cpuspgemm in the import graph, so the tests carry
// their own copy.
func seqRef(a, b *csr.Matrix) (*csr.Matrix, error) {
	entries := make([]csr.Entry, 0)
	row := map[int32]float64{}
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		for p := range ac {
			bc, bv := b.Row(int(ac[p]))
			for q := range bc {
				row[bc[q]] += av[p] * bv[q]
			}
		}
		for c, v := range row {
			entries = append(entries, csr.Entry{Row: int32(i), Col: c, Val: v})
			delete(row, c)
		}
	}
	return csr.FromEntries(a.Rows, b.Cols, entries)
}

func TestComputeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		a := matgen.ER(30+rng.Intn(40), 40, 0.12, rng.Int63())
		b := matgen.ER(40, 30+rng.Intn(40), 0.12, rng.Int63())
		want, err := seqRef(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Compute(a, b, model())
		if err != nil {
			t.Fatal(err)
		}
		if err := got.C.Validate(); err != nil {
			t.Fatalf("chunk invalid: %v", err)
		}
		if !csr.Equal(got.C, want, 1e-12) {
			t.Fatalf("trial %d: %s", trial, csr.Diff(got.C, want, 1e-12))
		}
	}
}

func TestComputeOnPanels(t *testing.T) {
	// Multiply a row panel of A with a column panel of A and check
	// against the corresponding block of the sequential product.
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 5)
	full, err := seqRef(a, a)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := partition.RowPanels(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := partition.ColPanels(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, rp := range rows {
		for _, cp := range cols {
			res, err := Compute(rp.M, cp.M, model())
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < res.C.Rows; r++ {
				cc, cv := res.C.Row(r)
				fc, fv := full.Row(rp.Start + r)
				// Extract the full row's entries within the panel range.
				var wantCols []int32
				var wantVals []float64
				for i := range fc {
					if int(fc[i]) >= cp.Start && int(fc[i]) < cp.End {
						wantCols = append(wantCols, fc[i]-int32(cp.Start))
						wantVals = append(wantVals, fv[i])
					}
				}
				if len(cc) != len(wantCols) {
					t.Fatalf("chunk[%d][%d] row %d nnz %d, want %d", rp.Start, cp.Start, r, len(cc), len(wantCols))
				}
				for i := range cc {
					if cc[i] != wantCols[i] || cv[i] != wantVals[i] {
						t.Fatalf("chunk[%d][%d] row %d element %d mismatch", rp.Start, cp.Start, r, i)
					}
				}
			}
		}
	}
}

func TestGroupsPartitionNonEmptyRows(t *testing.T) {
	a := matgen.RMAT(8, 8, 0.57, 0.19, 0.19, 6)
	res, err := Compute(a, a, model())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	var groupFlops int64
	for _, g := range res.Groups {
		if len(g.Rows) == 0 {
			t.Fatal("empty group")
		}
		for _, r := range g.Rows {
			if seen[r] {
				t.Fatalf("row %d in two groups", r)
			}
			seen[r] = true
			if res.UpperBounds[r] == 0 {
				t.Fatalf("row %d with zero upper bound grouped", r)
			}
		}
		groupFlops += g.Flops
	}
	for r := 0; r < a.Rows; r++ {
		if res.UpperBounds[r] > 0 && !seen[int32(r)] {
			t.Fatalf("row %d with work not grouped", r)
		}
	}
	if groupFlops != res.Flops {
		t.Fatalf("group flops %d != total %d", groupFlops, res.Flops)
	}
	if res.HashFlops+res.DenseFlops != res.Flops {
		t.Fatalf("hash %d + dense %d != total %d", res.HashFlops, res.DenseFlops, res.Flops)
	}
}

func TestDenseRowsUseDenseGroups(t *testing.T) {
	// A block-diagonal matrix of dense blocks: every output row's
	// worst case is the full block width, far above width/4 of the
	// narrow panel... use one panel = whole matrix; width = n, block
	// rows have ub = bs*bs/bs = bs... Construct instead a small dense
	// matrix where ub == width.
	a := matgen.BlockDiag(1, 12, 3) // fully dense 12x12
	res, err := Compute(a, a, model())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups")
	}
	for _, g := range res.Groups {
		if g.Kind != DenseGroup {
			t.Fatalf("dense matrix produced %v group", g.Kind)
		}
	}
	if res.HashFlops != 0 {
		t.Fatalf("dense matrix has hash flops %d", res.HashFlops)
	}
}

func TestSparseRowsUseHashGroups(t *testing.T) {
	// Very sparse wide matrix: upper bounds tiny relative to width.
	a := matgen.ER(200, 200, 0.01, 7)
	res, err := Compute(a, a, model())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		if g.Kind != HashGroup {
			t.Fatalf("sparse matrix produced %v group (class %d)", g.Kind, g.SizeClass)
		}
	}
}

func TestCostsPositiveAndOrdered(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 8)
	res, err := Compute(a, a, model())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumericSec <= 0 || res.SymbolicSec <= 0 || res.AnalysisSec <= 0 {
		t.Fatalf("non-positive costs: %+v", res)
	}
	if res.AnalysisSec >= res.SymbolicSec || res.SymbolicSec >= res.NumericSec {
		t.Fatalf("phase cost ordering violated: analysis %v symbolic %v numeric %v",
			res.AnalysisSec, res.SymbolicSec, res.NumericSec)
	}
	if res.OutputBytes != res.C.Bytes() {
		t.Fatalf("OutputBytes %d != C.Bytes %d", res.OutputBytes, res.C.Bytes())
	}
	if res.WorkspaceBytes <= 0 {
		t.Fatal("no workspace modeled")
	}
}

func TestFlopsMatchCSRFlops(t *testing.T) {
	a := matgen.Band(300, 3, 9)
	res, err := Compute(a, a, model())
	if err != nil {
		t.Fatal(err)
	}
	if want := csr.Flops(a, a); res.Flops != want {
		t.Fatalf("Flops = %d, want %d", res.Flops, want)
	}
}

func TestEmptyChunk(t *testing.T) {
	a := csr.New(10, 10)
	res, err := Compute(a, a, model())
	if err != nil {
		t.Fatal(err)
	}
	if res.C.Nnz() != 0 || res.Flops != 0 || len(res.Groups) != 0 {
		t.Fatalf("empty chunk produced work: %+v", res)
	}
}

func TestDimensionMismatch(t *testing.T) {
	if _, err := Compute(csr.New(3, 4), csr.New(5, 3), model()); err == nil {
		t.Fatal("expected dimension mismatch")
	}
}

func TestTopK(t *testing.T) {
	xs := []int64{5, 1, 9, 3, 7}
	top := topK(xs, 2)
	if len(top) != 2 {
		t.Fatalf("topK len = %d", len(top))
	}
	sum := top[0] + top[1]
	if sum != 16 {
		t.Fatalf("topK = %v, want {9,7}", top)
	}
	if got := topK(xs, 10); len(got) != 5 {
		t.Fatalf("topK over-length = %v", got)
	}
}

func TestGroupKindString(t *testing.T) {
	if HashGroup.String() != "hash" || DenseGroup.String() != "dense" {
		t.Fatal("GroupKind.String wrong")
	}
}

func TestClassifyFlopsConsistentWithCompute(t *testing.T) {
	for _, gen := range []*csr.Matrix{
		matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 60),
		matgen.Band(500, 5, 61),
	} {
		hashF, denseF, outNnz := ClassifyFlops(gen, gen)
		res, err := Compute(gen, gen, model())
		if err != nil {
			t.Fatal(err)
		}
		if hashF != res.HashFlops || denseF != res.DenseFlops {
			t.Fatalf("classification (%d,%d) != compute (%d,%d)",
				hashF, denseF, res.HashFlops, res.DenseFlops)
		}
		if outNnz != res.C.Nnz() {
			t.Fatalf("symbolic nnz %d != product nnz %d", outNnz, res.C.Nnz())
		}
	}
}
