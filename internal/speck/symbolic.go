package speck

import (
	"fmt"
	"math/bits"

	"repro/internal/accum"
	"repro/internal/csr"
)

// Symbolic is the values-independent half of a chunk multiplication:
// everything Compute derives from the sparsity patterns of A and B —
// row analysis, host grouping, the exact output structure (row offsets
// and column ids), the per-phase simulated durations and the transfer
// and workspace sizes. It is the unit the out-of-core plan cache
// stores: a later multiply whose operands carry the same pattern with
// fresh values re-runs only Numeric against it.
type Symbolic struct {
	// Rows, ACols and Cols record the operand shape the plan was built
	// for (A is Rows x ACols, B is ACols x Cols); Numeric validates
	// against them.
	Rows, ACols, Cols int

	// RowFlops and UpperBounds are the row-analysis outputs.
	RowFlops    []int64
	UpperBounds []int64
	// Groups is the host-side row grouping for the numeric kernels.
	Groups []Group
	// Flops is the total flop count; HashFlops and DenseFlops split it
	// by accumulator kind.
	Flops, HashFlops, DenseFlops int64

	// AnalysisSec, SymbolicSec and NumericSec are the simulated kernel
	// durations of the three phases.
	AnalysisSec, SymbolicSec, NumericSec float64

	// RowInfoBytes, NnzInfoBytes, OutputBytes and WorkspaceBytes are
	// the transfer payloads and device workspace of the chunk.
	RowInfoBytes, NnzInfoBytes, OutputBytes, WorkspaceBytes int64

	// RowOffsets and ColIDs are the exact output structure. Numeric
	// shares them with every product it emits; treat them as read-only.
	RowOffsets []int64
	ColIDs     []int32
}

// Bytes reports the memory the symbolic result retains, for cache
// accounting: the two structure arrays dominate, the row-analysis
// arrays follow.
func (s *Symbolic) Bytes() int64 {
	return int64(len(s.RowOffsets))*8 + int64(len(s.ColIDs))*4 +
		int64(len(s.RowFlops)+len(s.UpperBounds))*8 + int64(len(s.Groups))*48
}

// SymbolicCompute runs the values-independent pipeline — row analysis,
// symbolic structure (exact output row sizes and column ids) and host
// grouping — without touching any numeric value. Compute is exactly
// SymbolicCompute followed by Numeric, so a cached Symbolic replays
// into a byte-identical product.
func SymbolicCompute(a, b *csr.Matrix, cm CostModel) (*Symbolic, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("speck: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	sym := &Symbolic{
		Rows:        a.Rows,
		ACols:       a.Cols,
		Cols:        b.Cols,
		RowFlops:    csr.RowFlops(a, b),
		UpperBounds: csr.RowUpperBounds(a, b),
	}

	// Symbolic phase: exact output structure. The hash accumulator's
	// Flush emits each row's distinct columns sorted — the same order
	// the numeric accumulators emit — so the structure recorded here is
	// bit-for-bit the structure a cold multiply produces.
	width := b.Cols
	rowNnz := make([]int64, a.Rows)
	hash := accum.NewHash(64)
	var colBuf []int32
	var valBuf []float64
	colIDs := make([]int32, 0, a.Rows)
	for r := 0; r < a.Rows; r++ {
		if sym.UpperBounds[r] == 0 {
			continue
		}
		ac, _ := a.Row(r)
		for _, k := range ac {
			bc, _ := b.Row(int(k))
			for _, col := range bc {
				hash.AddSymbolic(col)
			}
		}
		colBuf, valBuf = hash.Flush(colBuf[:0], valBuf[:0])
		rowNnz[r] = int64(len(colBuf))
		colIDs = append(colIDs, colBuf...)
	}
	sym.ColIDs = colIDs
	finalizeSymbolic(sym, rowNnz, width, cm)
	return sym, nil
}

// finalizeSymbolic fills everything downstream of the structure scan —
// host grouping, exact offsets, simulated durations, transfer and
// workspace sizes — from the per-row output counts. It is shared by
// the exact path (counts from the symbolic hash pass) and the
// estimated path (counts read off the adaptive numeric pass), so both
// produce field-identical Symbolic plans.
func finalizeSymbolic(sym *Symbolic, rowNnz []int64, width int, cm CostModel) {
	// Host re-grouping for the numeric phase: bin rows by (kind, size
	// class), where kind is dense accumulation for rows whose
	// flops-per-output ratio amortizes the dense array.
	type key struct {
		kind GroupKind
		sc   int
	}
	bins := map[key]*Group{}
	var order []key // deterministic group order: first appearance
	for r := 0; r < sym.Rows; r++ {
		if sym.UpperBounds[r] == 0 {
			continue // empty output row: no kernel work
		}
		kind := HashGroup
		if rowNnz[r] > 0 && sym.RowFlops[r] >= denseCRThreshold*rowNnz[r] {
			kind = DenseGroup
		}
		sc := bits.Len64(uint64(sym.UpperBounds[r]))
		k := key{kind, sc}
		g, ok := bins[k]
		if !ok {
			g = &Group{Kind: kind, SizeClass: sc}
			bins[k] = g
			order = append(order, k)
		}
		g.Rows = append(g.Rows, int32(r))
		g.Flops += sym.RowFlops[r]
		sym.Flops += sym.RowFlops[r]
		if kind == DenseGroup {
			sym.DenseFlops += sym.RowFlops[r]
		} else {
			sym.HashFlops += sym.RowFlops[r]
		}
	}
	for _, k := range order {
		sym.Groups = append(sym.Groups, *bins[k])
	}

	// Exact offsets from the symbolic counts.
	sym.RowOffsets = make([]int64, sym.Rows+1)
	for r := 0; r < sym.Rows; r++ {
		sym.RowOffsets[r+1] = sym.RowOffsets[r] + rowNnz[r]
	}

	// Cost model.
	var numeric float64
	if cm.HashRate > 0 {
		numeric += float64(sym.HashFlops) / cm.HashRate
	}
	if cm.DenseRate > 0 {
		numeric += float64(sym.DenseFlops) / cm.DenseRate
	}
	sym.NumericSec = numeric
	sym.SymbolicSec = numeric * cm.SymbolicFactor
	sym.AnalysisSec = numeric * cm.AnalysisFactor

	// Transfer and workspace sizes.
	sym.RowInfoBytes = int64(sym.Rows) * 16 // flops + upper bound per row
	sym.NnzInfoBytes = int64(sym.Rows) * 8  // output row size per row
	nnz := sym.RowOffsets[sym.Rows]
	sym.OutputBytes = int64(sym.Rows+1)*8 + nnz*4 + nnz*8
	sym.WorkspaceBytes = workspaceBytes(sym.UpperBounds, width)
}

// Numeric re-runs only value accumulation against a pre-computed
// symbolic structure: for each row, the intermediate products scatter
// into a dense scratch array in the same order the cold accumulators
// apply them (so every float64 sum associates identically), then
// gather out through the cached column ids. The product shares the
// symbolic structure arrays and allocates only its value array.
//
// The operands must carry the same sparsity pattern the symbolic
// result was computed from; Numeric checks shape and non-zero layout
// cheaply (dimensions and output fit), while pattern equality is the
// caller's contract — the plan cache enforces it by fingerprint.
func Numeric(sym *Symbolic, a, b *csr.Matrix) (*Result, error) {
	if a.Rows != sym.Rows || a.Cols != sym.ACols || b.Rows != sym.ACols || b.Cols != sym.Cols {
		return nil, fmt.Errorf("speck: numeric shape %dx%d · %dx%d does not match plan %dx%d · %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, sym.Rows, sym.ACols, sym.ACols, sym.Cols)
	}
	c := &csr.Matrix{
		Rows:       sym.Rows,
		Cols:       sym.Cols,
		RowOffsets: sym.RowOffsets,
		ColIDs:     sym.ColIDs,
		Data:       make([]float64, sym.RowOffsets[sym.Rows]),
	}
	var scratch []float64
	var stamp []uint32
	if sym.Cols > 0 {
		scratch = make([]float64, sym.Cols)
		stamp = make([]uint32, sym.Cols)
	}
	// Generation stamps give assign-on-first-touch semantics, exactly
	// like the cold accumulators (hash insert, dense stamp): without
	// them a lone -0.0 product would come out as +0.0 (0 + -0.0) and
	// break bit-identity with the cold path.
	gen := uint32(0)
	for r := 0; r < sym.Rows; r++ {
		off, end := sym.RowOffsets[r], sym.RowOffsets[r+1]
		if off == end {
			continue
		}
		gen++
		if gen == 0 { // wrap-around: clear and restart
			for i := range stamp {
				stamp[i] = 0
			}
			gen = 1
		}
		ac, av := a.Row(r)
		for p := range ac {
			bc, bv := b.Row(int(ac[p]))
			for q := range bc {
				col := bc[q]
				if stamp[col] != gen {
					stamp[col] = gen
					scratch[col] = av[p] * bv[q]
				} else {
					scratch[col] += av[p] * bv[q]
				}
			}
		}
		for i := off; i < end; i++ {
			c.Data[i] = scratch[sym.ColIDs[i]]
		}
	}
	return resultFrom(sym, c), nil
}

// resultFrom assembles the full Result a chunk consumer expects from a
// symbolic plan and its computed product.
func resultFrom(sym *Symbolic, c *csr.Matrix) *Result {
	return &Result{
		C:              c,
		RowFlops:       sym.RowFlops,
		UpperBounds:    sym.UpperBounds,
		Groups:         sym.Groups,
		Flops:          sym.Flops,
		HashFlops:      sym.HashFlops,
		DenseFlops:     sym.DenseFlops,
		AnalysisSec:    sym.AnalysisSec,
		SymbolicSec:    sym.SymbolicSec,
		NumericSec:     sym.NumericSec,
		RowInfoBytes:   sym.RowInfoBytes,
		NnzInfoBytes:   sym.NnzInfoBytes,
		OutputBytes:    sym.OutputBytes,
		WorkspaceBytes: sym.WorkspaceBytes,
	}
}
