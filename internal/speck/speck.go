// Package speck implements the in-core GPU SpGEMM algorithm the
// out-of-core framework invokes per chunk, following spECK (Parger et
// al. [30]) as the paper's Section III-B describes:
//
//  1. Row analysis: compute per-row flops and worst-case output sizes.
//  2. Host grouping: bin rows into groups by size class so each group
//     can use a kernel configuration suited to its rows; rows with
//     dense output use the dense accumulator, sparse rows the hash map.
//  3. Symbolic kernels (one per group): count output row sizes.
//  4. Numeric kernels (one per group): compute the values.
//
// The arithmetic is executed for real (the returned chunk is exact);
// alongside it the package reports the simulated duration of each phase
// from a cost model, which the out-of-core engine turns into simulated
// kernel launches. Splitting "what is computed" from "when it runs" is
// what lets the same phase results drive both the synchronous baseline
// and the asynchronous pipeline.
package speck

import (
	"repro/internal/accum"
	"repro/internal/csr"
	"repro/internal/gpusim"
)

// CostModel converts per-group work into kernel durations.
type CostModel struct {
	// HashRate and DenseRate are numeric-phase throughputs (flops/s)
	// for hash-accumulator and dense-accumulator kernels.
	HashRate, DenseRate float64
	// SymbolicFactor scales numeric cost to symbolic cost.
	SymbolicFactor float64
	// AnalysisFactor scales numeric cost to row-analysis cost.
	AnalysisFactor float64
}

// ModelFromDevice extracts the cost model from a device configuration.
func ModelFromDevice(cfg gpusim.DeviceConfig) CostModel {
	return CostModel{
		HashRate:       cfg.HashRate,
		DenseRate:      cfg.DenseRate,
		SymbolicFactor: cfg.SymbolicFactor,
		AnalysisFactor: cfg.AnalysisFactor,
	}
}

// GroupKind selects the accumulator a row group uses.
type GroupKind int

const (
	// HashGroup rows accumulate into a hash map (sparse output rows).
	HashGroup GroupKind = iota
	// DenseGroup rows accumulate into a dense array (dense output rows).
	DenseGroup
)

func (k GroupKind) String() string {
	if k == DenseGroup {
		return "dense"
	}
	return "hash"
}

// Group is a set of rows of the A panel sharing a size class and
// accumulator kind; each group becomes one kernel launch.
type Group struct {
	Kind GroupKind
	// SizeClass is ceil(log2) of the worst-case row size, the binning
	// criterion.
	SizeClass int
	// Rows are indices into the A panel.
	Rows []int32
	// Flops is the total multiply-add flops of the group's rows.
	Flops int64
}

// Result is the outcome of one chunk multiplication: the exact product
// plus everything the out-of-core scheduler needs (sizes, groupings and
// per-phase simulated durations).
type Result struct {
	// C is the exact chunk product with panel-local column ids.
	C *csr.Matrix
	// RowFlops and UpperBounds are the row-analysis outputs.
	RowFlops    []int64
	UpperBounds []int64
	// Groups is the host-side row grouping.
	Groups []Group
	// Flops is the total flop count; HashFlops and DenseFlops split it
	// by accumulator kind (the split also drives the CPU cost model).
	Flops, HashFlops, DenseFlops int64

	// AnalysisSec, SymbolicSec and NumericSec are the simulated kernel
	// durations for the three phases.
	AnalysisSec, SymbolicSec, NumericSec float64

	// RowInfoBytes is the size of the row-analysis output transferred
	// to the host; NnzInfoBytes the symbolic output; OutputBytes the
	// size of the chunk's CSR arrays (the dominant D2H transfer).
	RowInfoBytes, NnzInfoBytes, OutputBytes int64
	// WorkspaceBytes models the device workspace (hash tables and
	// dense accumulators) the kernels need while processing the chunk.
	WorkspaceBytes int64
}

// denseCRThreshold: after the symbolic phase, a row is assigned to a
// dense-accumulation numeric kernel when its flops are at least this
// multiple of its output size, i.e. every output slot is hit several
// times and the dense array amortizes. This mirrors the paper's
// re-assignment of rows between the symbolic and numeric phases
// (Figure 3) using the now-known output sizes.
const denseCRThreshold = 8

// maxConcurrentRows models how many rows' accumulators are live on the
// device at once (one per SM in the kernel model); it sizes the
// workspace requirement.
const maxConcurrentRows = 80

// Compute multiplies an A row panel by a B column panel (B given with
// panel-local column ids) and returns the exact chunk product together
// with phase costs under the model. It is exactly SymbolicCompute
// followed by Numeric — the split the structure-reuse fast path caches
// across multiplies with an unchanged sparsity pattern.
func Compute(a, b *csr.Matrix, cm CostModel) (*Result, error) {
	sym, err := SymbolicCompute(a, b, cm)
	if err != nil {
		return nil, err
	}
	return Numeric(sym, a, b)
}

// ClassifyFlops splits the flops of A·B into the hash-row and
// dense-row shares under the same compression-ratio rule the kernels
// use, so other cost models (e.g. the hybrid engine's CPU model) see
// the same structure without running the full numeric computation. It
// also reports the exact output non-zero count (a symbolic pass).
func ClassifyFlops(a, b *csr.Matrix) (hashFlops, denseFlops, outNnz int64) {
	rf := csr.RowFlops(a, b)
	acc := accum.NewHash(64)
	for i := 0; i < a.Rows; i++ {
		if rf[i] == 0 {
			continue
		}
		ac, _ := a.Row(i)
		for _, k := range ac {
			bc, _ := b.Row(int(k))
			for _, col := range bc {
				acc.AddSymbolic(col)
			}
		}
		nnz := int64(acc.FlushSymbolic())
		outNnz += nnz
		if nnz > 0 && rf[i] >= denseCRThreshold*nnz {
			denseFlops += rf[i]
		} else {
			hashFlops += rf[i]
		}
	}
	return hashFlops, denseFlops, outNnz
}

// workspaceBytes estimates the device workspace: each of the
// maxConcurrentRows in-flight rows holds an accumulator sized to its
// worst case (capped at the panel width), 12 bytes per slot.
func workspaceBytes(ub []int64, width int) int64 {
	top := topK(ub, maxConcurrentRows)
	var total int64
	for _, u := range top {
		if u > int64(width) {
			u = int64(width)
		}
		total += u * 12
	}
	return total
}

// topK returns the k largest values of xs (k smallest-effort selection;
// panel row counts are modest).
func topK(xs []int64, k int) []int64 {
	if k > len(xs) {
		k = len(xs)
	}
	top := make([]int64, 0, k)
	for _, x := range xs {
		if len(top) < k {
			top = append(top, x)
			continue
		}
		// Replace the minimum if x is larger.
		mi := 0
		for i, t := range top {
			if t < top[mi] {
				mi = i
			}
		}
		if x > top[mi] {
			top[mi] = x
		}
	}
	return top
}
