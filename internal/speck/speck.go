// Package speck implements the in-core GPU SpGEMM algorithm the
// out-of-core framework invokes per chunk, following spECK (Parger et
// al. [30]) as the paper's Section III-B describes:
//
//  1. Row analysis: compute per-row flops and worst-case output sizes.
//  2. Host grouping: bin rows into groups by size class so each group
//     can use a kernel configuration suited to its rows; rows with
//     dense output use the dense accumulator, sparse rows the hash map.
//  3. Symbolic kernels (one per group): count output row sizes.
//  4. Numeric kernels (one per group): compute the values.
//
// The arithmetic is executed for real (the returned chunk is exact);
// alongside it the package reports the simulated duration of each phase
// from a cost model, which the out-of-core engine turns into simulated
// kernel launches. Splitting "what is computed" from "when it runs" is
// what lets the same phase results drive both the synchronous baseline
// and the asynchronous pipeline.
package speck

import (
	"fmt"
	"math/bits"

	"repro/internal/accum"
	"repro/internal/csr"
	"repro/internal/gpusim"
)

// CostModel converts per-group work into kernel durations.
type CostModel struct {
	// HashRate and DenseRate are numeric-phase throughputs (flops/s)
	// for hash-accumulator and dense-accumulator kernels.
	HashRate, DenseRate float64
	// SymbolicFactor scales numeric cost to symbolic cost.
	SymbolicFactor float64
	// AnalysisFactor scales numeric cost to row-analysis cost.
	AnalysisFactor float64
}

// ModelFromDevice extracts the cost model from a device configuration.
func ModelFromDevice(cfg gpusim.DeviceConfig) CostModel {
	return CostModel{
		HashRate:       cfg.HashRate,
		DenseRate:      cfg.DenseRate,
		SymbolicFactor: cfg.SymbolicFactor,
		AnalysisFactor: cfg.AnalysisFactor,
	}
}

// GroupKind selects the accumulator a row group uses.
type GroupKind int

const (
	// HashGroup rows accumulate into a hash map (sparse output rows).
	HashGroup GroupKind = iota
	// DenseGroup rows accumulate into a dense array (dense output rows).
	DenseGroup
)

func (k GroupKind) String() string {
	if k == DenseGroup {
		return "dense"
	}
	return "hash"
}

// Group is a set of rows of the A panel sharing a size class and
// accumulator kind; each group becomes one kernel launch.
type Group struct {
	Kind GroupKind
	// SizeClass is ceil(log2) of the worst-case row size, the binning
	// criterion.
	SizeClass int
	// Rows are indices into the A panel.
	Rows []int32
	// Flops is the total multiply-add flops of the group's rows.
	Flops int64
}

// Result is the outcome of one chunk multiplication: the exact product
// plus everything the out-of-core scheduler needs (sizes, groupings and
// per-phase simulated durations).
type Result struct {
	// C is the exact chunk product with panel-local column ids.
	C *csr.Matrix
	// RowFlops and UpperBounds are the row-analysis outputs.
	RowFlops    []int64
	UpperBounds []int64
	// Groups is the host-side row grouping.
	Groups []Group
	// Flops is the total flop count; HashFlops and DenseFlops split it
	// by accumulator kind (the split also drives the CPU cost model).
	Flops, HashFlops, DenseFlops int64

	// AnalysisSec, SymbolicSec and NumericSec are the simulated kernel
	// durations for the three phases.
	AnalysisSec, SymbolicSec, NumericSec float64

	// RowInfoBytes is the size of the row-analysis output transferred
	// to the host; NnzInfoBytes the symbolic output; OutputBytes the
	// size of the chunk's CSR arrays (the dominant D2H transfer).
	RowInfoBytes, NnzInfoBytes, OutputBytes int64
	// WorkspaceBytes models the device workspace (hash tables and
	// dense accumulators) the kernels need while processing the chunk.
	WorkspaceBytes int64
}

// denseCRThreshold: after the symbolic phase, a row is assigned to a
// dense-accumulation numeric kernel when its flops are at least this
// multiple of its output size, i.e. every output slot is hit several
// times and the dense array amortizes. This mirrors the paper's
// re-assignment of rows between the symbolic and numeric phases
// (Figure 3) using the now-known output sizes.
const denseCRThreshold = 8

// maxConcurrentRows models how many rows' accumulators are live on the
// device at once (one per SM in the kernel model); it sizes the
// workspace requirement.
const maxConcurrentRows = 80

// Compute multiplies an A row panel by a B column panel (B given with
// panel-local column ids) and returns the exact chunk product together
// with phase costs under the model.
func Compute(a, b *csr.Matrix, cm CostModel) (*Result, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("speck: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	res := &Result{
		RowFlops:    csr.RowFlops(a, b),
		UpperBounds: csr.RowUpperBounds(a, b),
	}

	// Symbolic phase: exact output row sizes. (spECK first bins rows by
	// their upper bounds for the symbolic kernels; the binning only
	// affects load balance, so the simulation folds symbolic cost into
	// one factor and runs the counting directly.)
	width := b.Cols
	rowNnz := make([]int64, a.Rows)
	hash := accum.NewHash(64)
	var dense *accum.Dense
	if width > 0 {
		dense = accum.NewDense(width)
	}
	for r := 0; r < a.Rows; r++ {
		if res.UpperBounds[r] == 0 {
			continue
		}
		ac, _ := a.Row(r)
		for _, k := range ac {
			bc, _ := b.Row(int(k))
			for _, col := range bc {
				hash.AddSymbolic(col)
			}
		}
		rowNnz[r] = int64(hash.FlushSymbolic())
	}

	// Host re-grouping for the numeric phase (the paper re-assigns rows
	// once symbolic sizes are known): bin rows by (kind, size class),
	// where kind is dense accumulation for rows whose flops-per-output
	// ratio is high enough to amortize the dense array.
	type key struct {
		kind GroupKind
		sc   int
	}
	bins := map[key]*Group{}
	var order []key // deterministic group order: first appearance
	for r := 0; r < a.Rows; r++ {
		if res.UpperBounds[r] == 0 {
			continue // empty output row: no kernel work
		}
		kind := HashGroup
		if rowNnz[r] > 0 && res.RowFlops[r] >= denseCRThreshold*rowNnz[r] {
			kind = DenseGroup
		}
		sc := bits.Len64(uint64(res.UpperBounds[r]))
		k := key{kind, sc}
		g, ok := bins[k]
		if !ok {
			g = &Group{Kind: kind, SizeClass: sc}
			bins[k] = g
			order = append(order, k)
		}
		g.Rows = append(g.Rows, int32(r))
		g.Flops += res.RowFlops[r]
		res.Flops += res.RowFlops[r]
		if kind == DenseGroup {
			res.DenseFlops += res.RowFlops[r]
		} else {
			res.HashFlops += res.RowFlops[r]
		}
	}
	for _, k := range order {
		res.Groups = append(res.Groups, *bins[k])
	}

	// Allocation: exact offsets from the symbolic counts.
	c := &csr.Matrix{Rows: a.Rows, Cols: width, RowOffsets: make([]int64, a.Rows+1)}
	for r := 0; r < a.Rows; r++ {
		c.RowOffsets[r+1] = c.RowOffsets[r] + rowNnz[r]
	}
	nnz := c.RowOffsets[a.Rows]
	c.ColIDs = make([]int32, nnz)
	c.Data = make([]float64, nnz)

	// Numeric phase: exact values, per group, written in place.
	for _, g := range res.Groups {
		acc := accum.Accumulator(hash)
		if g.Kind == DenseGroup {
			acc = dense
		}
		for _, r := range g.Rows {
			ac, av := a.Row(int(r))
			for p := range ac {
				bc, bv := b.Row(int(ac[p]))
				for q := range bc {
					acc.Add(bc[q], av[p]*bv[q])
				}
			}
			off, end := c.RowOffsets[r], c.RowOffsets[r+1]
			acc.Flush(c.ColIDs[off:off:end], c.Data[off:off:end])
		}
	}
	res.C = c

	// Cost model.
	var numeric float64
	if cm.HashRate > 0 {
		numeric += float64(res.HashFlops) / cm.HashRate
	}
	if cm.DenseRate > 0 {
		numeric += float64(res.DenseFlops) / cm.DenseRate
	}
	res.NumericSec = numeric
	res.SymbolicSec = numeric * cm.SymbolicFactor
	res.AnalysisSec = numeric * cm.AnalysisFactor

	// Transfer and workspace sizes.
	res.RowInfoBytes = int64(a.Rows) * 16 // flops + upper bound per row
	res.NnzInfoBytes = int64(a.Rows) * 8  // output row size per row
	res.OutputBytes = c.Bytes()
	res.WorkspaceBytes = workspaceBytes(res.UpperBounds, width)
	return res, nil
}

// ClassifyFlops splits the flops of A·B into the hash-row and
// dense-row shares under the same compression-ratio rule the kernels
// use, so other cost models (e.g. the hybrid engine's CPU model) see
// the same structure without running the full numeric computation. It
// also reports the exact output non-zero count (a symbolic pass).
func ClassifyFlops(a, b *csr.Matrix) (hashFlops, denseFlops, outNnz int64) {
	rf := csr.RowFlops(a, b)
	acc := accum.NewHash(64)
	for i := 0; i < a.Rows; i++ {
		if rf[i] == 0 {
			continue
		}
		ac, _ := a.Row(i)
		for _, k := range ac {
			bc, _ := b.Row(int(k))
			for _, col := range bc {
				acc.AddSymbolic(col)
			}
		}
		nnz := int64(acc.FlushSymbolic())
		outNnz += nnz
		if nnz > 0 && rf[i] >= denseCRThreshold*nnz {
			denseFlops += rf[i]
		} else {
			hashFlops += rf[i]
		}
	}
	return hashFlops, denseFlops, outNnz
}

// workspaceBytes estimates the device workspace: each of the
// maxConcurrentRows in-flight rows holds an accumulator sized to its
// worst case (capped at the panel width), 12 bytes per slot.
func workspaceBytes(ub []int64, width int) int64 {
	top := topK(ub, maxConcurrentRows)
	var total int64
	for _, u := range top {
		if u > int64(width) {
			u = int64(width)
		}
		total += u * 12
	}
	return total
}

// topK returns the k largest values of xs (k smallest-effort selection;
// panel row counts are modest).
func topK(xs []int64, k int) []int64 {
	if k > len(xs) {
		k = len(xs)
	}
	top := make([]int64, 0, k)
	for _, x := range xs {
		if len(top) < k {
			top = append(top, x)
			continue
		}
		// Replace the minimum if x is larger.
		mi := 0
		for i, t := range top {
			if t < top[mi] {
				mi = i
			}
		}
		if x > top[mi] {
			top[mi] = x
		}
	}
	return top
}
