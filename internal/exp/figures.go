package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/hybrid"
)

// Table1 prints the simulated device specification (the paper's
// Table I) together with the cost-model calibration.
func Table1() *Table {
	cfg := gpusim.V100Config()
	t := &Table{
		Title:  "Table I: simulated GPU specification",
		Header: []string{"property", "value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("GPUs", cfg.Name)
	add("Architecture", "Volta (modeled)")
	add("#SM", fmt.Sprintf("%d", cfg.NumSMs))
	add("Size of device memory", fmt.Sprintf("%d GB", cfg.MemoryBytes>>30))
	add("FP32 CUDA Cores/GPU", fmt.Sprintf("%d", cfg.FP32Cores))
	add("Register File Size / SM (KB)", fmt.Sprintf("%d", cfg.RegistersPerSM/1024*4))
	add("Max Registers / Thread", "255")
	add("Shared Memory Size / SM (KB)", fmt.Sprintf("up to %d KB", cfg.SharedMemPerSMBytes>>10))
	add("Max Thread Block Size", fmt.Sprintf("%d", cfg.MaxThreadsPerBlock))
	add("-- cost model --", "")
	add("H2D bandwidth", fmt.Sprintf("%.1f GB/s", cfg.H2DBandwidth/1e9))
	add("D2H bandwidth", fmt.Sprintf("%.1f GB/s", cfg.D2HBandwidth/1e9))
	add("hash-kernel throughput", fmt.Sprintf("%.1f GFLOP/s", cfg.HashRate/1e9))
	add("dense-kernel throughput", fmt.Sprintf("%.1f GFLOP/s", cfg.DenseRate/1e9))
	return t
}

// Table2 reproduces Table II: features of the input matrices and their
// squares, for the synthetic analogs.
func Table2(runs []*Run) *Table {
	t := &Table{
		Title: "Table II: features of input matrices (synthetic analogs; counts in thousands)",
		Header: []string{"matrix (analog of)", "abbr.", "n", "nnz(A)", "flop(A^2)", "nnz(A^2)",
			"compr. ratio", "paper ratio x2"},
		Notes: []string{
			"flops count a multiply-add as 2, so a collision-free product has ratio 2;",
			"compare our ratio against 2x the paper's Table II value (last column).",
		},
	}
	for _, r := range runs {
		t.Rows = append(t.Rows, []string{
			r.Entry.Name, r.Entry.Abbr,
			fmt.Sprintf("%.1f", float64(r.A.Rows)/1e3),
			fmt.Sprintf("%.1f", float64(r.A.Nnz())/1e3),
			fmt.Sprintf("%.1f", float64(r.Flops)/1e3),
			fmt.Sprintf("%.1f", float64(r.C.Nnz())/1e3),
			fmt.Sprintf("%.2f", r.CR()),
			fmt.Sprintf("%.2f", 2*r.Entry.PaperCR),
		})
	}
	return t
}

// Fig4 reproduces Figure 4: percentage of data-transfer time over the
// total execution time of synchronous (partitioned, dynamic-allocation)
// spECK.
func Fig4(runs []*Run) (*Table, error) {
	t := &Table{
		Title:  "Figure 4: data transfer share of synchronous spECK",
		Header: []string{"matrix", "transfer %", "total (sim ms)"},
		Notes:  []string{"paper band: 77.55% - 89.65%"},
	}
	for _, r := range runs {
		opts := r.CoreOpts()
		opts.DynamicAlloc = true
		_, st, err := core.Run(r.A, r.A, r.Cfg(), opts)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", r.Entry.Abbr, err)
		}
		t.Rows = append(t.Rows, []string{
			r.Entry.Abbr,
			fmt.Sprintf("%.2f", st.TransferFraction*100),
			fmt.Sprintf("%.3f", st.TotalSec*1e3),
		})
	}
	return t, nil
}

// Fig7Row is one matrix's Figure 7 measurement.
type Fig7Row struct {
	Abbr                      string
	CPUGF, GPUGF, HybridGF    float64
	GPUOverCPU, HybridOverGPU float64
	HybridOverCPU             float64
}

// Fig7Data computes Figure 7's three series.
func Fig7Data(runs []*Run) ([]Fig7Row, error) {
	var out []Fig7Row
	for _, r := range runs {
		_, cpuSt, err := hybrid.RunCPUOnly(r.A, r.A, r.Cfg(), hybrid.HostModel{})
		if err != nil {
			return nil, fmt.Errorf("fig7 cpu %s: %w", r.Entry.Abbr, err)
		}
		gpuOpts := r.CoreOpts()
		gpuOpts.Async = true
		gpuOpts.Reorder = true
		_, gpuSt, err := core.Run(r.A, r.A, r.Cfg(), gpuOpts)
		if err != nil {
			return nil, fmt.Errorf("fig7 gpu %s: %w", r.Entry.Abbr, err)
		}
		_, hySt, err := hybrid.Run(r.A, r.A, r.Cfg(), hybrid.Options{Core: r.CoreOpts(), Reorder: true})
		if err != nil {
			return nil, fmt.Errorf("fig7 hybrid %s: %w", r.Entry.Abbr, err)
		}
		out = append(out, Fig7Row{
			Abbr:          r.Entry.Abbr,
			CPUGF:         cpuSt.GFLOPS,
			GPUGF:         gpuSt.GFLOPS,
			HybridGF:      hySt.GFLOPS,
			GPUOverCPU:    cpuSt.TotalSec / gpuSt.TotalSec,
			HybridOverGPU: gpuSt.TotalSec / hySt.TotalSec,
			HybridOverCPU: cpuSt.TotalSec / hySt.TotalSec,
		})
	}
	return out, nil
}

// Fig7 reproduces Figure 7: GFLOPS of the multicore CPU baseline, the
// out-of-core GPU implementation and the hybrid implementation.
func Fig7(runs []*Run) (*Table, error) {
	rows, err := Fig7Data(runs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 7: GFLOPS, CPU vs out-of-core GPU vs hybrid",
		Header: []string{"matrix", "CPU GFLOPS", "GPU GFLOPS", "hybrid GFLOPS",
			"GPU/CPU", "hybrid/GPU", "hybrid/CPU"},
		Notes: []string{
			"paper bands: GPU/CPU 1.98-3.03 (most ~2); hybrid/GPU 1.16-1.57 (most ~1.5);",
			"hybrid/CPU up to 3.74; absolute GFLOPS ~2x the paper's due to the flops convention.",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Abbr,
			fmt.Sprintf("%.3f", r.CPUGF),
			fmt.Sprintf("%.3f", r.GPUGF),
			fmt.Sprintf("%.3f", r.HybridGF),
			fmt.Sprintf("%.2f", r.GPUOverCPU),
			fmt.Sprintf("%.2f", r.HybridOverGPU),
			fmt.Sprintf("%.2f", r.HybridOverCPU),
		})
	}
	return t, nil
}

// Fig8 reproduces Figure 8: speedup of the asynchronous implementation
// over synchronous (pre-allocated, partitioned) spECK.
func Fig8(runs []*Run) (*Table, error) {
	t := &Table{
		Title:  "Figure 8: asynchronous vs synchronous GPU implementation",
		Header: []string{"matrix", "sync (sim ms)", "async (sim ms)", "speedup %"},
		Notes:  []string{"paper band: 6.8% - 17.7%"},
	}
	for _, r := range runs {
		syncOpts := r.CoreOpts()
		syncOpts.DynamicAlloc = true
		_, syncSt, err := core.Run(r.A, r.A, r.Cfg(), syncOpts)
		if err != nil {
			return nil, fmt.Errorf("fig8 sync %s: %w", r.Entry.Abbr, err)
		}
		asyncOpts := r.CoreOpts()
		asyncOpts.Async = true
		asyncOpts.Reorder = true
		_, asyncSt, err := core.Run(r.A, r.A, r.Cfg(), asyncOpts)
		if err != nil {
			return nil, fmt.Errorf("fig8 async %s: %w", r.Entry.Abbr, err)
		}
		t.Rows = append(t.Rows, []string{
			r.Entry.Abbr,
			fmt.Sprintf("%.3f", syncSt.TotalSec*1e3),
			fmt.Sprintf("%.3f", asyncSt.TotalSec*1e3),
			fmt.Sprintf("%.1f", (syncSt.TotalSec/asyncSt.TotalSec-1)*100),
		})
	}
	return t, nil
}

// Fig9 reproduces Figure 9: the hybrid implementation with and without
// flop-sorted reordering of chunks.
func Fig9(runs []*Run) (*Table, error) {
	t := &Table{
		Title:  "Figure 9: hybrid implementation with and without reordering",
		Header: []string{"matrix", "default GFLOPS", "reordered GFLOPS", "speedup %"},
		Notes:  []string{"reordering gains concentrate on the skewed (graph) matrices"},
	}
	for _, r := range runs {
		_, def, err := hybrid.Run(r.A, r.A, r.Cfg(), hybrid.Options{Core: r.CoreOpts(), Reorder: false})
		if err != nil {
			return nil, fmt.Errorf("fig9 default %s: %w", r.Entry.Abbr, err)
		}
		_, reord, err := hybrid.Run(r.A, r.A, r.Cfg(), hybrid.Options{Core: r.CoreOpts(), Reorder: true})
		if err != nil {
			return nil, fmt.Errorf("fig9 reorder %s: %w", r.Entry.Abbr, err)
		}
		t.Rows = append(t.Rows, []string{
			r.Entry.Abbr,
			fmt.Sprintf("%.3f", def.GFLOPS),
			fmt.Sprintf("%.3f", reord.GFLOPS),
			fmt.Sprintf("%.1f", (def.TotalSec/reord.TotalSec-1)*100),
		})
	}
	return t, nil
}

// Fig10Ratios is the ratio sweep of Figure 10.
var Fig10Ratios = []float64{0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}

// Fig10 reproduces Figure 10: hybrid GFLOPS under different GPU/CPU
// flop-allocation ratios for two representative matrices.
func Fig10(runs []*Run, abbrs ...string) (*Table, error) {
	if len(abbrs) == 0 {
		abbrs = []string{"com-lj", "nlp"}
	}
	t := &Table{
		Title:  "Figure 10: hybrid GFLOPS vs GPU flop-allocation ratio",
		Header: append([]string{"matrix"}, ratioHeader()...),
		Notes:  []string{"the curve rises with the ratio, peaks, then drops (paper Figure 10)"},
	}
	for _, abbr := range abbrs {
		r := findRun(runs, abbr)
		if r == nil {
			return nil, fmt.Errorf("fig10: no matrix %q", abbr)
		}
		row := []string{abbr}
		for _, ratio := range Fig10Ratios {
			_, st, err := hybrid.Run(r.A, r.A, r.Cfg(), hybrid.Options{Core: r.CoreOpts(), Reorder: true, Ratio: ratio})
			if err != nil {
				return nil, fmt.Errorf("fig10 %s ratio %.2f: %w", abbr, ratio, err)
			}
			row = append(row, fmt.Sprintf("%.3f", st.GFLOPS))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func ratioHeader() []string {
	h := make([]string, len(Fig10Ratios))
	for i, r := range Fig10Ratios {
		h[i] = fmt.Sprintf("%.0f%%", r*100)
	}
	return h
}

// Table3Row is one matrix's Table III comparison.
type Table3Row struct {
	Abbr string
	// BestChunks is the GPU chunk count with the best simulated time
	// (exhaustive search); FixedChunks the count the 65% rule picks.
	BestChunks, FixedChunks int
	// LossPct is how much slower the 65% choice is than the best.
	LossPct float64
}

// Table3Data runs the exhaustive search of Table III.
func Table3Data(runs []*Run) ([]Table3Row, error) {
	var out []Table3Row
	for _, r := range runs {
		row := Table3Row{Abbr: r.Entry.Abbr}

		_, fixedSt, err := hybrid.Run(r.A, r.A, r.Cfg(), hybrid.Options{Core: r.CoreOpts(), Reorder: true, Ratio: hybrid.DefaultRatio})
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", r.Entry.Abbr, err)
		}
		row.FixedChunks = fixedSt.GPUChunks

		best := -1.0
		total := r.GridR * r.GridC
		for n := 1; n <= total; n++ {
			_, st, err := hybrid.Run(r.A, r.A, r.Cfg(), hybrid.Options{Core: r.CoreOpts(), Reorder: true, ForceGPUChunks: n})
			if err != nil {
				return nil, fmt.Errorf("table3 %s n=%d: %w", r.Entry.Abbr, n, err)
			}
			if best < 0 || st.TotalSec < best {
				best = st.TotalSec
				row.BestChunks = n
			}
		}
		row.LossPct = (fixedSt.TotalSec/best - 1) * 100
		out = append(out, row)
	}
	return out, nil
}

// Table3 reproduces Table III: GPU chunk count under the fixed 65%
// ratio vs the exhaustively best count.
func Table3(runs []*Run) (*Table, error) {
	rows, err := Table3Data(runs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Table III: chunks assigned to GPU, fixed %.0f%% ratio vs best case", hybrid.DefaultRatio*100),
		Header: []string{"matrix", "best #GPU chunks", "fixed-ratio #GPU chunks", "fixed-ratio loss %"},
		Notes:  []string{"paper: equal in 7 of 9 cases; losses 2.95% and 4.30% otherwise"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Abbr,
			fmt.Sprintf("%d", r.BestChunks),
			fmt.Sprintf("%d", r.FixedChunks),
			fmt.Sprintf("%.2f", r.LossPct),
		})
	}
	return t, nil
}

func findRun(runs []*Run, abbr string) *Run {
	for _, r := range runs {
		if r.Entry.Abbr == abbr {
			return r
		}
	}
	return nil
}
