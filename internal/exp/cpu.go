package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/matgen"
	"repro/internal/parallel"
	"repro/internal/partition"
)

// CPUBenchReport is the machine-readable result of the CPU engine
// benchmark (-exp=cpu), written to BENCH_cpu.json so performance can
// be tracked across commits. All engines multiply the same skewed
// R-MAT matrix by itself; GFLOPS uses the Gustavson flop count
// (2 flops per multiply-add), so the numbers are comparable with the
// paper's Table II scale.
type CPUBenchReport struct {
	Matrix  string `json:"matrix"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	Nnz     int64  `json:"nnz"`
	Flops   int64  `json:"flops"`
	Threads int    `json:"threads"`
	// Engines maps engine name (hash, hash-static, dense, esc, merge)
	// to its best-of-three timing.
	Engines map[string]CPUEngineResult `json:"engines"`
	// SpeedupHashVsStatic compares the work-stealing scheduler against
	// the static row split on the same hash accumulator.
	SpeedupHashVsStatic float64           `json:"speedup_hash_vs_static"`
	Assembly            CPUAssemblyResult `json:"assembly"`
	// ThreadScaling times the hash engine at fixed thread counts
	// (1, 2, 4, 8) regardless of GOMAXPROCS, so runs on differently
	// sized machines stay comparable. The committed baseline's headline
	// engine numbers remain the Threads field's count.
	ThreadScaling []CPUThreadScalingResult `json:"thread_scaling,omitempty"`
}

// CPUThreadScalingResult is one fixed-thread-count timing of the hash
// engine.
type CPUThreadScalingResult struct {
	Threads   int     `json:"threads"`
	Seconds   float64 `json:"seconds"`
	GFLOPS    float64 `json:"gflops"`
	SpeedupV1 float64 `json:"speedup_vs_1"`
}

// CPUEngineResult is one engine's best-of-three timing.
type CPUEngineResult struct {
	Seconds float64 `json:"seconds"`
	GFLOPS  float64 `json:"gflops"`
}

// CPUAssemblyResult is the chunk-assembly timing: reassembling the
// product from a 4x4 chunk grid, reported as output non-zeros per
// second since assembly is bandwidth- rather than flop-bound.
type CPUAssemblyResult struct {
	GridRows   int     `json:"grid_rows"`
	GridCols   int     `json:"grid_cols"`
	Seconds    float64 `json:"seconds"`
	OutputNnz  int64   `json:"output_nnz"`
	MnnzPerSec float64 `json:"mnnz_per_sec"`
}

// bestOf times fn reps times and returns the fastest run in seconds.
func bestOf(reps int, fn func() error) (float64, error) {
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		s := time.Since(start).Seconds()
		if i == 0 || s < best {
			best = s
		}
	}
	return best, nil
}

// CPUBench benchmarks every real CPU engine on one skewed R-MAT
// matrix (the same generator as the scheduler benchmarks, so numbers
// line up with `go test -bench MultiplySchedulers`). It returns the
// printable table plus the JSON report for BENCH_cpu.json.
func CPUBench() (*Table, *CPUBenchReport, error) {
	const reps = 3
	a := matgen.RMAT(12, 16, 0.6, 0.19, 0.19, 7)
	flops := csr.Flops(a, a)
	threads := parallel.Workers(0)

	rep := &CPUBenchReport{
		Matrix:  "rmat-12 (scale 12, edge factor 16, a=0.6)",
		Rows:    a.Rows,
		Cols:    a.Cols,
		Nnz:     a.Nnz(),
		Flops:   flops,
		Threads: threads,
		Engines: map[string]CPUEngineResult{},
	}

	engines := []struct {
		name string
		run  func() (*csr.Matrix, error)
	}{
		{"hash", func() (*csr.Matrix, error) {
			return cpuspgemm.Multiply(a, a, cpuspgemm.Options{Method: cpuspgemm.Hash})
		}},
		{"hash-static", func() (*csr.Matrix, error) {
			return cpuspgemm.MultiplyStatic(a, a, cpuspgemm.Options{Method: cpuspgemm.Hash})
		}},
		{"dense", func() (*csr.Matrix, error) {
			return cpuspgemm.Multiply(a, a, cpuspgemm.Options{Method: cpuspgemm.Dense})
		}},
		{"esc", func() (*csr.Matrix, error) {
			return cpuspgemm.Multiply(a, a, cpuspgemm.Options{Method: cpuspgemm.ESC})
		}},
		{"merge", func() (*csr.Matrix, error) {
			return cpuspgemm.MultiplyMerge(a, a, 0)
		}},
		{"hash-estimate", func() (*csr.Matrix, error) {
			c, _, _, err := cpuspgemm.MultiplyEstimated(a, a, cpuspgemm.Options{})
			return c, err
		}},
	}

	t := &Table{
		Title:  fmt.Sprintf("CPU engines: %s, %d threads, best of %d", rep.Matrix, threads, reps),
		Header: []string{"engine", "seconds", "GFLOPS"},
		Notes: []string{
			"hash vs hash-static isolates the work-stealing scheduler + accumulator pooling",
			"written to BENCH_cpu.json by cmd/spgemm-bench -exp=cpu",
		},
	}
	for _, e := range engines {
		s, err := bestOf(reps, func() error {
			_, err := e.run()
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("cpu bench %s: %w", e.name, err)
		}
		r := CPUEngineResult{Seconds: s, GFLOPS: float64(flops) / s / 1e9}
		rep.Engines[e.name] = r
		t.Rows = append(t.Rows, []string{e.name, fmt.Sprintf("%.4f", s), fmt.Sprintf("%.3f", r.GFLOPS)})
	}
	if st := rep.Engines["hash-static"].Seconds; st > 0 {
		rep.SpeedupHashVsStatic = st / rep.Engines["hash"].Seconds
	}

	asm, err := benchAssembly(a, rep)
	if err != nil {
		return nil, nil, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("assembly %dx%d", asm.GridRows, asm.GridCols),
		fmt.Sprintf("%.4f", asm.Seconds),
		fmt.Sprintf("%.1f Mnnz/s", asm.MnnzPerSec),
	})

	// Fixed-thread-count scaling of the hash engine. On machines with
	// fewer cores than a requested count the extra workers just share
	// cores; the report keeps the requested count so baselines from
	// different machines stay comparable.
	for _, nt := range []int{1, 2, 4, 8} {
		s, err := bestOf(reps, func() error {
			_, err := cpuspgemm.Multiply(a, a, cpuspgemm.Options{Threads: nt, Method: cpuspgemm.Hash})
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("cpu bench threads=%d: %w", nt, err)
		}
		r := CPUThreadScalingResult{Threads: nt, Seconds: s, GFLOPS: float64(flops) / s / 1e9}
		if len(rep.ThreadScaling) > 0 {
			r.SpeedupV1 = rep.ThreadScaling[0].Seconds / s
		} else {
			r.SpeedupV1 = 1
		}
		rep.ThreadScaling = append(rep.ThreadScaling, r)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("hash @%d threads", nt),
			fmt.Sprintf("%.4f", s),
			fmt.Sprintf("%.3f", r.GFLOPS),
		})
	}
	return t, rep, nil
}

// benchAssembly times core.AssembleChunks on a 4x4 chunk grid of the
// product A², with the chunk products computed once outside the timed
// region.
func benchAssembly(a *csr.Matrix, rep *CPUBenchReport) (CPUAssemblyResult, error) {
	const gr, gc = 4, 4
	rps, err := partition.RowPanels(a, gr)
	if err != nil {
		return CPUAssemblyResult{}, err
	}
	cps, err := partition.ColPanels(a, gc)
	if err != nil {
		return CPUAssemblyResult{}, err
	}
	chunks := make([]*csr.Matrix, gr*gc)
	for r := 0; r < gr; r++ {
		for c := 0; c < gc; c++ {
			m, err := cpuspgemm.Multiply(rps[r].M, cps[c].M, cpuspgemm.Options{})
			if err != nil {
				return CPUAssemblyResult{}, err
			}
			chunks[r*gc+c] = m
		}
	}
	var out *csr.Matrix
	s, err := bestOf(3, func() error {
		out, err = core.AssembleChunks(a.Rows, a.Cols, gr, gc,
			func(r, c int) *csr.Matrix { return chunks[r*gc+c] },
			func(r int) int { return rps[r].Start },
			func(c int) int { return cps[c].Start },
		)
		return err
	})
	if err != nil {
		return CPUAssemblyResult{}, err
	}
	asm := CPUAssemblyResult{
		GridRows:   gr,
		GridCols:   gc,
		Seconds:    s,
		OutputNnz:  out.Nnz(),
		MnnzPerSec: float64(out.Nnz()) / s / 1e6,
	}
	rep.Assembly = asm
	return asm, nil
}
