package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/matgen"
	"repro/internal/parallel"
	"repro/internal/partition"
)

// CPUBenchReport is the machine-readable result of the CPU engine
// benchmark (-exp=cpu), written to BENCH_cpu.json so performance can
// be tracked across commits. All engines multiply the same skewed
// R-MAT matrix by itself; GFLOPS uses the Gustavson flop count
// (2 flops per multiply-add), so the numbers are comparable with the
// paper's Table II scale.
type CPUBenchReport struct {
	Matrix  string `json:"matrix"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	Nnz     int64  `json:"nnz"`
	Flops   int64  `json:"flops"`
	Threads int    `json:"threads"`
	// Engines maps engine name (hash, hash-static, dense, esc, merge)
	// to its best-of-three timing.
	Engines map[string]CPUEngineResult `json:"engines"`
	// PhysicalCPUs is runtime.NumCPU() on the benchmarking machine —
	// the honest ceiling on wall-clock parallel speedup. Thread counts
	// above it oversubscribe cores, so wall_speedup_vs_1 saturating
	// near this value is physics, not a scheduler defect; the
	// scheduled speedup_vs_1 is the machine-independent metric.
	PhysicalCPUs int `json:"physical_cpus"`
	// SpeedupHashVsStatic compares the work-stealing scheduler against
	// the static row split on the same hash accumulator.
	SpeedupHashVsStatic float64           `json:"speedup_hash_vs_static"`
	Assembly            CPUAssemblyResult `json:"assembly"`
	// ThreadScaling reports the hash engine at fixed thread counts
	// (1, 2, 4, 8) regardless of GOMAXPROCS, so runs on differently
	// sized machines stay comparable. See CPUThreadScalingResult for
	// the wall-clock vs scheduled-speedup split.
	ThreadScaling []CPUThreadScalingResult `json:"thread_scaling,omitempty"`
	// ClassKernels breaks the adaptive exact hash engine down by the
	// per-row kernel class that served each row (list, hash, dense,
	// cseg), from one instrumented run — per-class row/flop/nnz shares
	// and per-phase times. Instrumentation adds clock reads, so these
	// times are indicative, not the headline engine numbers.
	ClassKernels map[string]CPUClassKernel `json:"class_kernels,omitempty"`
}

// CPUThreadScalingResult is one fixed-thread-count measurement of the
// hash engine. Two speedups are reported because they answer different
// questions:
//
//   - WallSpeedupV1 is real elapsed time at N goroutines over 1. It is
//     capped by the machine: with physical_cpus=1 it cannot exceed ~1
//     no matter how good the scheduler is.
//   - SpeedupV1 is the *scheduled* speedup: the engine runs serially at
//     N-worker chunk granularity (Options.ChunkWorkers) recording each
//     chunk's real measured duration (Options.ChunkLog), and the
//     measured durations are replayed through the dynamic claiming
//     discipline (parallel.ListSchedule) at N equal workers. It
//     reports sum(chunks)/makespan per phase — how well the chunking
//     and claiming actually balance the measured work — and is the
//     number the CI gates floor, because it is reproducible on any
//     machine regardless of core count.
//
// The scheduled metric covers the two parallel phases (symbolic,
// numeric); the serial sections between them (row analysis, prefix
// sum, segment compression) are excluded from both sides of its ratio.
type CPUThreadScalingResult struct {
	Threads       int     `json:"threads"`
	Seconds       float64 `json:"seconds"`
	GFLOPS        float64 `json:"gflops"`
	WallSpeedupV1 float64 `json:"wall_speedup_vs_1"`
	SpeedupV1     float64 `json:"speedup_vs_1"`
}

// CPUClassKernel is one kernel class's share of the instrumented
// adaptive multiply.
type CPUClassKernel struct {
	Rows       int64   `json:"rows"`
	Flops      int64   `json:"flops"`
	Nnz        int64   `json:"nnz"`
	SymbolicMs float64 `json:"symbolic_ms"`
	NumericMs  float64 `json:"numeric_ms"`
}

// CPUEngineResult is one engine's best-of-three timing.
type CPUEngineResult struct {
	Seconds float64 `json:"seconds"`
	GFLOPS  float64 `json:"gflops"`
}

// CPUAssemblyResult is the chunk-assembly timing: reassembling the
// product from a 4x4 chunk grid, reported as output non-zeros per
// second since assembly is bandwidth- rather than flop-bound.
type CPUAssemblyResult struct {
	GridRows   int     `json:"grid_rows"`
	GridCols   int     `json:"grid_cols"`
	Seconds    float64 `json:"seconds"`
	OutputNnz  int64   `json:"output_nnz"`
	MnnzPerSec float64 `json:"mnnz_per_sec"`
}

// bestOf times fn reps times and returns the fastest run in seconds.
func bestOf(reps int, fn func() error) (float64, error) {
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		s := time.Since(start).Seconds()
		if i == 0 || s < best {
			best = s
		}
	}
	return best, nil
}

// CPUBench benchmarks every real CPU engine on one skewed R-MAT
// matrix (the same generator as the scheduler benchmarks, so numbers
// line up with `go test -bench MultiplySchedulers`). It returns the
// printable table plus the JSON report for BENCH_cpu.json.
func CPUBench() (*Table, *CPUBenchReport, error) {
	const reps = 3
	a := matgen.RMAT(12, 16, 0.6, 0.19, 0.19, 7)
	flops := csr.Flops(a, a)
	threads := parallel.Workers(0)

	rep := &CPUBenchReport{
		Matrix:       "rmat-12 (scale 12, edge factor 16, a=0.6)",
		Rows:         a.Rows,
		Cols:         a.Cols,
		Nnz:          a.Nnz(),
		Flops:        flops,
		Threads:      threads,
		PhysicalCPUs: runtime.NumCPU(),
		Engines:      map[string]CPUEngineResult{},
	}

	engines := []struct {
		name string
		run  func() (*csr.Matrix, error)
	}{
		{"hash", func() (*csr.Matrix, error) {
			return cpuspgemm.Multiply(a, a, cpuspgemm.Options{Method: cpuspgemm.Hash})
		}},
		{"hash-static", func() (*csr.Matrix, error) {
			return cpuspgemm.MultiplyStatic(a, a, cpuspgemm.Options{Method: cpuspgemm.Hash})
		}},
		{"dense", func() (*csr.Matrix, error) {
			return cpuspgemm.Multiply(a, a, cpuspgemm.Options{Method: cpuspgemm.Dense})
		}},
		{"esc", func() (*csr.Matrix, error) {
			return cpuspgemm.Multiply(a, a, cpuspgemm.Options{Method: cpuspgemm.ESC})
		}},
		{"merge", func() (*csr.Matrix, error) {
			return cpuspgemm.MultiplyMerge(a, a, 0)
		}},
		{"hash-estimate", func() (*csr.Matrix, error) {
			c, _, _, err := cpuspgemm.MultiplyEstimated(a, a, cpuspgemm.Options{})
			return c, err
		}},
	}

	t := &Table{
		Title:  fmt.Sprintf("CPU engines: %s, %d threads, best of %d", rep.Matrix, threads, reps),
		Header: []string{"engine", "seconds", "GFLOPS"},
		Notes: []string{
			"hash vs hash-static isolates the work-stealing scheduler + accumulator pooling",
			"written to BENCH_cpu.json by cmd/spgemm-bench -exp=cpu",
		},
	}
	for _, e := range engines {
		s, err := bestOf(reps, func() error {
			_, err := e.run()
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("cpu bench %s: %w", e.name, err)
		}
		r := CPUEngineResult{Seconds: s, GFLOPS: float64(flops) / s / 1e9}
		rep.Engines[e.name] = r
		t.Rows = append(t.Rows, []string{e.name, fmt.Sprintf("%.4f", s), fmt.Sprintf("%.3f", r.GFLOPS)})
	}
	if st := rep.Engines["hash-static"].Seconds; st > 0 {
		rep.SpeedupHashVsStatic = st / rep.Engines["hash"].Seconds
	}

	asm, err := benchAssembly(a, rep)
	if err != nil {
		return nil, nil, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("assembly %dx%d", asm.GridRows, asm.GridCols),
		fmt.Sprintf("%.4f", asm.Seconds),
		fmt.Sprintf("%.1f Mnnz/s", asm.MnnzPerSec),
	})

	// Per-class kernel breakdown of the adaptive hash engine, from one
	// instrumented run (the clock reads the instrumentation adds keep
	// it out of the timed repetitions above).
	var stats cpuspgemm.ClassStats
	if _, err := cpuspgemm.Multiply(a, a, cpuspgemm.Options{Method: cpuspgemm.Hash, ClassStats: &stats}); err != nil {
		return nil, nil, fmt.Errorf("cpu bench class stats: %w", err)
	}
	rep.ClassKernels = map[string]CPUClassKernel{}
	names := stats.Names()
	for k, c := range stats.Classes {
		if c.Rows == 0 && c.Nnz == 0 {
			continue
		}
		rep.ClassKernels[names[k]] = CPUClassKernel{
			Rows:       c.Rows,
			Flops:      c.Flops,
			Nnz:        c.Nnz,
			SymbolicMs: float64(c.SymbolicNs) / 1e6,
			NumericMs:  float64(c.NumericNs) / 1e6,
		}
		t.Rows = append(t.Rows, []string{
			"class " + names[k],
			fmt.Sprintf("%.4f", float64(c.SymbolicNs+c.NumericNs)/1e9),
			fmt.Sprintf("%d rows", c.Rows),
		})
	}

	// Fixed-thread-count scaling of the hash engine. Each count gets
	// two measurements: real wall time at nt goroutines, and the
	// scheduled replay — the engine runs serially at nt-worker chunk
	// granularity recording true per-chunk durations, which
	// parallel.ListSchedule then replays at nt equal workers. On this
	// benchmarking container physical_cpus is often 1, making wall
	// speedup physically flat; the scheduled metric is the one the CI
	// floors gate (see CPUThreadScalingResult).
	for _, nt := range []int{1, 2, 4, 8} {
		s, err := bestOf(reps, func() error {
			_, err := cpuspgemm.Multiply(a, a, cpuspgemm.Options{Threads: nt, Method: cpuspgemm.Hash})
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("cpu bench threads=%d: %w", nt, err)
		}
		sched, err := scheduledSpeedup(a, nt, reps)
		if err != nil {
			return nil, nil, fmt.Errorf("cpu bench scheduled threads=%d: %w", nt, err)
		}
		r := CPUThreadScalingResult{
			Threads:   nt,
			Seconds:   s,
			GFLOPS:    float64(flops) / s / 1e9,
			SpeedupV1: sched,
		}
		if len(rep.ThreadScaling) > 0 {
			r.WallSpeedupV1 = rep.ThreadScaling[0].Seconds / s
		} else {
			r.WallSpeedupV1 = 1
		}
		rep.ThreadScaling = append(rep.ThreadScaling, r)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("hash @%d threads", nt),
			fmt.Sprintf("%.4f", s),
			fmt.Sprintf("%.3f (sched x%.2f)", r.GFLOPS, sched),
		})
	}
	return t, rep, nil
}

// scheduledSpeedup measures the hash engine's per-chunk durations at
// nt-worker chunk granularity — serially, so every duration is a true
// single-thread measurement unpolluted by core sharing — and replays
// them through the dynamic claiming discipline at nt equal workers.
// The returned ratio sum/makespan (work-weighted across the symbolic
// and numeric phases) is the scheduled speedup: 1.0 means no overlap,
// nt means perfect balance. Best (largest-speedup) of reps logs, since
// scheduler noise only ever inflates individual chunk times.
func scheduledSpeedup(a *csr.Matrix, nt, reps int) (float64, error) {
	best := 0.0
	for i := 0; i < reps; i++ {
		var log cpuspgemm.ChunkLog
		_, err := cpuspgemm.Multiply(a, a, cpuspgemm.Options{
			Method:       cpuspgemm.Hash,
			Threads:      1,
			ChunkWorkers: nt,
			ChunkLog:     &log,
		})
		if err != nil {
			return 0, err
		}
		var sum, makespan float64
		for _, phase := range [][]cpuspgemm.ChunkSpan{log.Symbolic, log.Numeric} {
			durations := make([]float64, len(phase))
			for j, c := range phase {
				durations[j] = c.Seconds
				sum += c.Seconds
			}
			makespan += parallel.ListSchedule(durations, nt)
		}
		if makespan <= 0 {
			continue
		}
		if s := sum / makespan; s > best {
			best = s
		}
	}
	return best, nil
}

// benchAssembly times core.AssembleChunks on a 4x4 chunk grid of the
// product A², with the chunk products computed once outside the timed
// region.
func benchAssembly(a *csr.Matrix, rep *CPUBenchReport) (CPUAssemblyResult, error) {
	const gr, gc = 4, 4
	rps, err := partition.RowPanels(a, gr)
	if err != nil {
		return CPUAssemblyResult{}, err
	}
	cps, err := partition.ColPanels(a, gc)
	if err != nil {
		return CPUAssemblyResult{}, err
	}
	chunks := make([]*csr.Matrix, gr*gc)
	for r := 0; r < gr; r++ {
		for c := 0; c < gc; c++ {
			m, err := cpuspgemm.Multiply(rps[r].M, cps[c].M, cpuspgemm.Options{})
			if err != nil {
				return CPUAssemblyResult{}, err
			}
			chunks[r*gc+c] = m
		}
	}
	var out *csr.Matrix
	s, err := bestOf(3, func() error {
		out, err = core.AssembleChunks(a.Rows, a.Cols, gr, gc,
			func(r, c int) *csr.Matrix { return chunks[r*gc+c] },
			func(r int) int { return rps[r].Start },
			func(c int) int { return cps[c].Start },
		)
		return err
	})
	if err != nil {
		return CPUAssemblyResult{}, err
	}
	asm := CPUAssemblyResult{
		GridRows:   gr,
		GridCols:   gc,
		Seconds:    s,
		OutputNnz:  out.Nnz(),
		MnnzPerSec: float64(out.Nnz()) / s / 1e6,
	}
	rep.Assembly = asm
	return asm, nil
}
