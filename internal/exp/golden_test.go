package exp

import (
	"math"
	"testing"
)

// TestGoldenHeadlines pins the headline reproduction numbers recorded
// in EXPERIMENTS.md within a ±5% band. The simulation is
// deterministic, so drift here means the cost model, the suite
// generators or the pipeline changed behaviour — if the change is
// intentional, update EXPERIMENTS.md and these values together.
func TestGoldenHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	within := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("%s = %.4f drifted from the recorded %.4f (EXPERIMENTS.md)", name, got, want)
		}
	}

	rows, err := Fig7Data(MustSuite())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct{ cpu, gpu, hybrid float64 }{
		"lj2008":  {0.495, 0.931, 1.570},
		"com-lj":  {0.482, 0.918, 1.464},
		"soc-lj":  {0.453, 0.821, 1.279},
		"stokes":  {1.191, 2.072, 2.989},
		"uk-2002": {1.308, 3.386, 4.356},
		"nlp":     {1.354, 4.309, 5.404},
	}
	for _, r := range rows {
		w, ok := want[r.Abbr]
		if !ok {
			continue
		}
		within(r.Abbr+" cpu GFLOPS", r.CPUGF, w.cpu)
		within(r.Abbr+" gpu GFLOPS", r.GPUGF, w.gpu)
		within(r.Abbr+" hybrid GFLOPS", r.HybridGF, w.hybrid)
	}

	t3, err := Table3Data(MustSuite())
	if err != nil {
		t.Fatal(err)
	}
	equal := 0
	for _, r := range t3 {
		if r.BestChunks == r.FixedChunks {
			equal++
		}
	}
	if equal < 7 {
		t.Errorf("fixed ratio matches best in only %d of 9 cases (recorded: 8)", equal)
	}
}
