package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/gpusim"
	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/reorder"
)

// GridSweepGrids is the chunk-grid sweep of the methodology experiment.
var GridSweepGrids = [][2]int{{1, 2}, {2, 2}, {3, 3}, {4, 4}, {6, 5}, {8, 8}}

// GridSweep reproduces the paper's chunk-size methodology (Section
// IV-A: "The percentage varies with the chunk size. Thus, we select
// the results when synchronous spECK achieves the best performance"):
// it sweeps chunk grids for one matrix and reports the synchronous and
// asynchronous totals, showing the trade-off between per-chunk
// overheads (fine grids) and lost overlap/buffer pressure (coarse
// grids).
func GridSweep(runs []*Run, abbr string) (*Table, error) {
	r := findRun(runs, abbr)
	if r == nil {
		return nil, fmt.Errorf("gridsweep: no matrix %q", abbr)
	}
	t := &Table{
		Title:  fmt.Sprintf("Methodology: chunk-grid sweep on %s (sim ms)", abbr),
		Header: []string{"grid", "chunks", "sync", "async", "async transfer %"},
		Notes:  []string{"the paper tunes the chunk size per matrix the same way (Section IV-A)"},
	}
	for _, g := range GridSweepGrids {
		syncOpts := core.Options{RowPanels: g[0], ColPanels: g[1], DynamicAlloc: true}
		_, syncSt, err := core.Run(r.A, r.A, r.Cfg(), syncOpts)
		syncCell := "oom"
		if err == nil {
			syncCell = fmt.Sprintf("%.3f", syncSt.TotalSec*1e3)
		}
		asyncOpts := core.Options{RowPanels: g[0], ColPanels: g[1], Async: true, Reorder: true}
		_, asyncSt, err := core.Run(r.A, r.A, r.Cfg(), asyncOpts)
		asyncCell, fracCell := "oom", "-"
		if err == nil {
			asyncCell = fmt.Sprintf("%.3f", asyncSt.TotalSec*1e3)
			fracCell = fmt.Sprintf("%.1f", asyncSt.TransferFraction*100)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", g[0], g[1]),
			fmt.Sprintf("%d", g[0]*g[1]),
			syncCell, asyncCell, fracCell,
		})
	}
	return t, nil
}

// BufferSweep sweeps the async pipeline's output-buffer count (the
// paper double-buffers); run by BenchmarkAblationBuffers.
func BufferSweep(r *Run, counts []int) ([]float64, error) {
	out := make([]float64, len(counts))
	for i, n := range counts {
		opts := r.CoreOpts()
		opts.Async = true
		opts.Reorder = true
		opts.OutputBuffers = n
		_, st, err := core.Run(r.A, r.A, r.Cfg(), opts)
		if err != nil {
			return nil, fmt.Errorf("buffers=%d: %w", n, err)
		}
		out[i] = st.TotalSec
	}
	return out, nil
}

// AblationFormulation compares the row-column formulation (a 2-D chunk
// grid) against a row-row out-of-core variant (row panels only, all of
// B resident) — the design choice of the paper's Section III-A. The
// row-row variant only works while B fits on the device; the table
// reports "oom" where it does not.
func AblationFormulation(runs []*Run) (*Table, error) {
	t := &Table{
		Title:  "Ablation F: row-column vs row-row (B resident) formulation (sim ms, async)",
		Header: []string{"matrix", "row-column", "row-row", "row-column @small dev", "row-row @small dev"},
		Notes: []string{
			"Section III-A: the row-row formulation cannot partition B; once the device",
			"shrinks below B's footprint it stops working, while the row-column grid",
			"keeps going by streaming column panels.",
		},
	}
	run := func(r *Run, opts core.Options, devMem int64) string {
		cfg := r.Cfg()
		cfg.MemoryBytes = devMem
		if _, st, err := core.Run(r.A, r.A, cfg, opts); err == nil {
			return fmt.Sprintf("%.3f", st.TotalSec*1e3)
		}
		return "oom"
	}
	for _, r := range runs {
		rc := r.CoreOpts()
		rc.Async = true
		rc.Reorder = true
		rr := core.Options{RowPanels: r.GridR * r.GridC, ColPanels: 1, Async: true, Reorder: true}
		if rr.RowPanels > r.A.Rows {
			rr.RowPanels = r.A.Rows
		}
		// A deliberately small device: below B's resident footprint
		// (B ≈ A for these square products), so the row-row variant
		// must fail while the 2-D grid streams column panels through.
		rcSmall := rc
		rcSmall.RowPanels *= 2
		rcSmall.ColPanels *= 2
		small := r.A.Bytes()*6/10 + 3*maxChunkBytes(r.C, rcSmall.RowPanels, rcSmall.ColPanels)
		t.Rows = append(t.Rows, []string{
			r.Entry.Abbr,
			run(r, rc, r.DevMem),
			run(r, rr, r.DevMem),
			run(r, rcSmall, small),
			run(r, rr, small),
		})
	}
	return t, nil
}

// maxChunkBytes computes the largest output chunk's footprint under an
// R x C grid, from the known product matrix.
func maxChunkBytes(c *csr.Matrix, gr, gc int) int64 {
	rb := partition.Bounds(c.Rows, gr)
	cb := partition.Bounds(c.Cols, gc)
	nnz := make([]int64, gr*gc)
	ri := 0
	for r := 0; r < c.Rows; r++ {
		for rb[ri+1] <= r {
			ri++
		}
		cols, _ := c.Row(r)
		ci := 0
		for _, col := range cols {
			for cb[ci+1] <= int(col) {
				ci++
			}
			nnz[ri*gc+ci]++
		}
	}
	var mx int64
	for i, n := range nnz {
		rows := int64(rb[i/gc+1] - rb[i/gc])
		if b := n*12 + (rows+1)*8; b > mx {
			mx = b
		}
	}
	return mx
}

// AblationLocality shows why the related work cares about input
// ordering (Akbudak et al., Ballard et al.): the same matrix run
// through the out-of-core pipeline in its natural (banded) order, in a
// random order, and re-localized with reverse Cuthill-McKee. Ordering
// changes the chunk-grid structure — a scrambled band spreads its
// output over every chunk — and with it the pipeline's cost.
func AblationLocality() (*Table, error) {
	t := &Table{
		Title:  "Ablation G: input ordering and the out-of-core pipeline (async)",
		Header: []string{"ordering", "bandwidth", "nonzero chunks", "sim ms"},
		Notes:  []string{"band matrix, 6x5 grid; RCM recovers the natural locality of a scrambled input"},
	}
	base := matgen.Band(9000, 4, 2024)
	rng := rand.New(rand.NewSource(2025))
	perm := make([]int32, base.Rows)
	for i, v := range rng.Perm(base.Rows) {
		perm[i] = int32(v)
	}
	shuffled, err := reorder.Permute(base, perm)
	if err != nil {
		return nil, err
	}
	rcmPerm, err := reorder.RCM(shuffled)
	if err != nil {
		return nil, err
	}
	recovered, err := reorder.Permute(shuffled, rcmPerm)
	if err != nil {
		return nil, err
	}

	// One shared device size: from the natural ordering's product.
	c, err := cpuspgemm.Multiply(base, base, cpuspgemm.Options{})
	if err != nil {
		return nil, err
	}
	devMem := c.Bytes()*6/10 + 2*base.Bytes()
	opts := core.Options{RowPanels: 6, ColPanels: 5, Async: true, Reorder: true}

	for _, variant := range []struct {
		name string
		m    *csr.Matrix
	}{{"natural (banded)", base}, {"random shuffle", shuffled}, {"RCM recovered", recovered}} {
		cfg := gpusim.ScaledV100Config(devMem)
		_, st, err := core.Run(variant.m, variant.m, cfg, opts)
		cell := "oom"
		if err == nil {
			cell = fmt.Sprintf("%.3f", st.TotalSec*1e3)
		}
		// Count nonzero chunks of the grid.
		eng, err2 := core.NewEngine(gpusim.NewDevice(nil, cfg), variant.m, variant.m, opts)
		if err2 != nil {
			return nil, err2
		}
		nz := 0
		for _, f := range eng.ChunkFlops() {
			if f > 0 {
				nz++
			}
		}
		t.Rows = append(t.Rows, []string{
			variant.name,
			fmt.Sprintf("%d", reorder.Bandwidth(variant.m)),
			fmt.Sprintf("%d/%d", nz, opts.RowPanels*opts.ColPanels),
			cell,
		})
	}
	return t, nil
}

// PhaseBreakdown decomposes the asynchronous pipeline's device time by
// phase for every matrix, from the simulated timeline: row analysis,
// symbolic, numeric, H2D and D2H busy time, and the makespan. It makes
// Figure 3's stage structure quantitative.
func PhaseBreakdown(runs []*Run) (*Table, error) {
	t := &Table{
		Title:  "Diagnostics: async pipeline phase breakdown (sim ms)",
		Header: []string{"matrix", "analysis", "symbolic", "numeric", "h2d", "d2h", "makespan"},
		Notes:  []string{"kernel phases overlap the d2h column; their sum can exceed the makespan"},
	}
	for _, r := range runs {
		opts := r.CoreOpts()
		opts.Async = true
		opts.Reorder = true
		_, _, tl, err := core.RunTraced(r.A, r.A, r.Cfg(), opts)
		if err != nil {
			return nil, fmt.Errorf("phases %s: %w", r.Entry.Abbr, err)
		}
		var analysis, symbolic, numeric, h2d, d2h float64
		var end float64
		for _, s := range tl {
			d := float64(s.End-s.Start) / 1e9
			if e := float64(s.End) / 1e9; e > end {
				end = e
			}
			switch s.Lane {
			case "h2d":
				h2d += d
			case "d2h":
				d2h += d
			case "kernel":
				switch {
				case strings.HasPrefix(s.Label, "analysis"):
					analysis += d
				case strings.HasPrefix(s.Label, "symbolic"):
					symbolic += d
				case strings.HasPrefix(s.Label, "numeric"):
					numeric += d
				}
			}
		}
		ms := func(x float64) string { return fmt.Sprintf("%.3f", x*1e3) }
		t.Rows = append(t.Rows, []string{
			r.Entry.Abbr, ms(analysis), ms(symbolic), ms(numeric), ms(h2d), ms(d2h), ms(end),
		})
	}
	return t, nil
}
