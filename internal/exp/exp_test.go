package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/csr"
)

func TestSuitePrepared(t *testing.T) {
	runs, err := Suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 9 {
		t.Fatalf("suite has %d runs", len(runs))
	}
	for _, r := range runs {
		if err := r.A.Validate(); err != nil {
			t.Fatalf("%s: invalid A: %v", r.Entry.Abbr, err)
		}
		if r.Flops != csr.Flops(r.A, r.A) {
			t.Fatalf("%s: flops mismatch", r.Entry.Abbr)
		}
		// Out-of-core premise (the paper's matrix-selection criterion):
		// an in-core run, which needs inputs plus the full output on
		// the device, must not fit device memory.
		inCore := 2*r.A.Bytes() + r.C.Bytes()
		if inCore <= r.DevMem {
			t.Fatalf("%s: in-core footprint (%d B) fits device memory (%d B) — not out-of-core",
				r.Entry.Abbr, inCore, r.DevMem)
		}
		if r.GridR < 2 || r.GridC < 2 {
			t.Fatalf("%s: degenerate grid %dx%d", r.Entry.Abbr, r.GridR, r.GridC)
		}
		if r.CR() < 2 {
			t.Fatalf("%s: compression ratio %.2f below the collision-free floor", r.Entry.Abbr, r.CR())
		}
	}
}

func TestSuiteCompressionRatioOrdering(t *testing.T) {
	// The suite must preserve the paper's compression-ratio ordering:
	// the LiveJournal class lowest, then wikis, then stokes, uk-2002
	// and nlpkkt200.
	cr := map[string]float64{}
	for _, r := range MustSuite() {
		cr[r.Entry.Abbr] = r.CR()
	}
	order := [][2]string{
		{"soc-lj", "wiki0925"},
		{"lj2008", "wiki1104"},
		{"wiki0206", "stokes"},
		{"stokes", "uk-2002"},
		{"uk-2002", "nlp"},
	}
	for _, pair := range order {
		if cr[pair[0]] >= cr[pair[1]] {
			t.Errorf("CR(%s)=%.2f not below CR(%s)=%.2f", pair[0], cr[pair[0]], pair[1], cr[pair[1]])
		}
	}
}

func TestSuiteRunLookup(t *testing.T) {
	if _, err := SuiteRun("nlp"); err != nil {
		t.Fatal(err)
	}
	if _, err := SuiteRun("bogus"); err == nil {
		t.Fatal("expected error for unknown matrix")
	}
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T ==", "xxx", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1And2(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) < 9 {
		t.Fatalf("Table1 has %d rows", len(t1.Rows))
	}
	t2 := Table2(MustSuite())
	if len(t2.Rows) != 9 {
		t.Fatalf("Table2 has %d rows", len(t2.Rows))
	}
}

func TestFig4Band(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	tab, err := Fig4(MustSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		var frac float64
		if _, err := fscan(row[1], &frac); err != nil {
			t.Fatal(err)
		}
		// The paper's band is 77.55-89.65; allow a small margin for the
		// synthetic analogs.
		if frac < 70 || frac > 95 {
			t.Errorf("%s: transfer fraction %.2f%% outside plausible band", row[0], frac)
		}
	}
}

func TestFig7Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	rows, err := Fig7Data(MustSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GPUOverCPU < 1.2 || r.GPUOverCPU > 3.5 {
			t.Errorf("%s: GPU/CPU %.2f outside plausible band", r.Abbr, r.GPUOverCPU)
		}
		if r.HybridOverGPU < 0.9 || r.HybridOverGPU > 2.0 {
			t.Errorf("%s: hybrid/GPU %.2f outside plausible band", r.Abbr, r.HybridOverGPU)
		}
		if r.HybridOverCPU < r.GPUOverCPU*0.9 {
			t.Errorf("%s: hybrid/CPU %.2f below GPU/CPU %.2f", r.Abbr, r.HybridOverCPU, r.GPUOverCPU)
		}
	}
}

func TestFig8AlwaysGains(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	tab, err := Fig8(MustSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		var gain float64
		if _, err := fscan(row[3], &gain); err != nil {
			t.Fatal(err)
		}
		if gain <= 0 {
			t.Errorf("%s: async gain %.1f%% not positive", row[0], gain)
		}
		if gain > 40 {
			t.Errorf("%s: async gain %.1f%% implausibly high", row[0], gain)
		}
	}
}

func TestFig10CurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	runs := MustSuite()
	tab, err := Fig10(runs, "com-lj")
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	vals := make([]float64, len(Fig10Ratios))
	for i := range vals {
		if _, err := fscan(row[i+1], &vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Rises then falls: the maximum is interior and the endpoints are
	// below it (paper Figure 10's shape).
	maxI, maxV := 0, vals[0]
	for i, v := range vals {
		if v > maxV {
			maxI, maxV = i, v
		}
	}
	if maxI == 0 || maxI == len(vals)-1 {
		t.Fatalf("GFLOPS curve %v has no interior peak", vals)
	}
	if vals[0] >= maxV || vals[len(vals)-1] >= maxV {
		t.Fatalf("GFLOPS curve %v does not drop from the peak", vals)
	}
}

// fscan parses a single float from a table cell.
func fscan(s string, out *float64) (int, error) {
	return fmt.Sscanf(s, "%f", out)
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x,y", `q"z`}, {"1", "2"}},
	}
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"q\"\"z\"\n1,2\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}
