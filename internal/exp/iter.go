package exp

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/gpusim"
	"repro/internal/matgen"
	"repro/internal/parallel"
)

// IterBenchReport is the machine-readable result of the iterative-
// workload benchmark (-exp=iter), written to BENCH_iter.json. It
// models the dominant repeated-pattern workloads (AMG setup, graph
// iterations): N multiplies of matrices whose sparsity pattern never
// changes while the values are refreshed every iteration, comparing
// the cold path (full symbolic + numeric each time) against the warm
// structure-reuse path (cached plan, numeric only).
type IterBenchReport struct {
	Matrix     string `json:"matrix"`
	Rows       int    `json:"rows"`
	Cols       int    `json:"cols"`
	Nnz        int64  `json:"nnz"`
	Flops      int64  `json:"flops"`
	Threads    int    `json:"threads"`
	Iterations int    `json:"iterations"`
	// CPU is the real multi-core engine in wall-clock seconds; GPU is
	// the out-of-core device engine in simulated seconds.
	CPU IterEngineResult `json:"cpu"`
	GPU IterEngineResult `json:"gpu"`
	// CPUEstimated is the estimation-elided cold path on the real CPU
	// engine, measured against the same fresh-values iterations: how
	// close a cold multiply gets to the warm numeric-only replay when
	// the exact symbolic phase is replaced by the sampled estimator.
	CPUEstimated IterEstimationResult `json:"cpu_estimated"`
}

// IterEstimationResult reports the estimation-based symbolic elision
// on the CPU engine's cold path.
type IterEstimationResult struct {
	// ColdSeconds is the per-iteration average of the estimated cold
	// multiply (estimator + adaptive numeric + compaction, no exact
	// symbolic phase).
	ColdSeconds float64 `json:"cold_seconds"`
	// ColdSpeedup is exact-cold / estimated-cold — what the elision
	// saves a cold multiply.
	ColdSpeedup float64 `json:"cold_speedup"`
	// ColdOverWarm is estimated-cold / warm — the acceptance target of
	// the elision is <= 3 (before the adaptive exact path the exact
	// cold multiply sat near 10x warm; it is now ~2x).
	ColdOverWarm float64 `json:"cold_over_warm"`
	// EstimatedRows, FallbackRows and OverflowRows aggregate the
	// estimator's row outcomes over all iterations; HitRate is
	// estimated / (estimated + fallback).
	EstimatedRows int64   `json:"estimated_rows"`
	FallbackRows  int64   `json:"fallback_rows"`
	OverflowRows  int64   `json:"overflow_rows"`
	HitRate       float64 `json:"estimation_hit_rate"`
}

// IterEngineResult compares one engine's cold and warm per-iteration
// timings with the phase split and cache traffic behind them.
type IterEngineResult struct {
	// ColdSeconds and WarmSeconds are per-iteration averages over the
	// fresh-values iterations (the cold run that populates the cache
	// is excluded from the warm average).
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	// Speedup is ColdSeconds / WarmSeconds — the acceptance floor of
	// the structure-reuse fast path is >= 1.5. It was 2 when the cold
	// exact path still ran the uncompressed symbolic phase; the
	// adaptive exact engine cut cold by ~5x while warm was already
	// near its memory-bandwidth floor, compressing the ratio.
	Speedup float64 `json:"speedup"`
	// SymbolicSeconds is the per-iteration cost the warm path avoids
	// (cold minus warm); NumericSeconds is what both paths pay.
	SymbolicSeconds float64 `json:"symbolic_seconds"`
	NumericSeconds  float64 `json:"numeric_seconds"`
	// Hits/Misses and HitRate are the plan-cache counters of the warm
	// sequence (the device result also counts per-chunk reuse).
	Hits    int64   `json:"plan_cache_hits"`
	Misses  int64   `json:"plan_cache_misses"`
	HitRate float64 `json:"plan_cache_hit_rate"`
	// ColdBytesH2D/WarmBytesH2D document the residency effect on the
	// device engine (zero for the CPU engine).
	// Zero is meaningful here (warm device runs should transfer nothing
	// new), so the fields are always serialized for the benchcmp gate.
	ColdBytesH2D int64 `json:"cold_bytes_h2d"`
	WarmBytesH2D int64 `json:"warm_bytes_h2d"`
}

// reseed returns a copy of m with the same pattern and fresh
// deterministic values.
func reseed(m *csr.Matrix, seed int64) *csr.Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := &csr.Matrix{
		Rows: m.Rows, Cols: m.Cols,
		RowOffsets: m.RowOffsets, ColIDs: m.ColIDs,
		Data: make([]float64, len(m.Data)),
	}
	for i := range out.Data {
		out.Data[i] = rng.NormFloat64()
	}
	return out
}

// IterBench measures the structure-reuse fast path end to end: the
// same matrix pattern multiplied Iterations times with fresh values,
// cold (no cache) versus warm (plan cache shared across iterations),
// on the real CPU engine and on the simulated out-of-core GPU engine.
func IterBench() (*Table, *IterBenchReport, error) {
	const iters = 5
	a := matgen.RMAT(12, 16, 0.6, 0.19, 0.19, 7)
	rep := &IterBenchReport{
		Matrix:     "rmat-12 (scale 12, edge factor 16, a=0.6)",
		Rows:       a.Rows,
		Cols:       a.Cols,
		Nnz:        a.Nnz(),
		Flops:      csr.Flops(a, a),
		Threads:    parallel.Workers(0),
		Iterations: iters,
	}

	cpu, est, err := iterCPU(a, iters)
	if err != nil {
		return nil, nil, fmt.Errorf("iter bench cpu: %w", err)
	}
	rep.CPU = cpu
	rep.CPUEstimated = est
	gpu, err := iterGPU(a, iters)
	if err != nil {
		return nil, nil, fmt.Errorf("iter bench gpu: %w", err)
	}
	rep.GPU = gpu

	t := &Table{
		Title:  fmt.Sprintf("Iterative workload: %s, %d fresh-values iterations", rep.Matrix, iters),
		Header: []string{"engine", "cold s/iter", "warm s/iter", "speedup", "symbolic s", "hit rate"},
		Rows: [][]string{
			{"cpu (wall)", fmt.Sprintf("%.4f", cpu.ColdSeconds), fmt.Sprintf("%.4f", cpu.WarmSeconds),
				fmt.Sprintf("%.2fx", cpu.Speedup), fmt.Sprintf("%.4f", cpu.SymbolicSeconds), fmt.Sprintf("%.2f", cpu.HitRate)},
			{"cpu estimated (wall)", fmt.Sprintf("%.4f", est.ColdSeconds), fmt.Sprintf("%.4f", cpu.WarmSeconds),
				fmt.Sprintf("%.2fx", est.ColdSeconds/cpu.WarmSeconds), "-", fmt.Sprintf("%.2f", est.HitRate)},
			{"gpu (simulated)", fmt.Sprintf("%.4f", gpu.ColdSeconds), fmt.Sprintf("%.4f", gpu.WarmSeconds),
				fmt.Sprintf("%.2fx", gpu.Speedup), fmt.Sprintf("%.4f", gpu.SymbolicSeconds), fmt.Sprintf("%.2f", gpu.HitRate)},
		},
		Notes: []string{
			"warm = cached symbolic plan, numeric-only re-multiply (acceptance floor: speedup >= 1.5)",
			fmt.Sprintf("cpu estimated cold = symbolic elision: %.2fx faster than exact cold, %.2fx warm (target <= 3x)",
				est.ColdSpeedup, est.ColdOverWarm),
			fmt.Sprintf("gpu H2D bytes cold %d -> warm %d (panels stay device-resident across jobs)", gpu.ColdBytesH2D, gpu.WarmBytesH2D),
			"written to BENCH_iter.json by cmd/spgemm-bench -exp=iter",
		},
	}
	return t, rep, nil
}

// iterCPU times the real engine: cold = full two-phase multiply per
// iteration, warm = numeric-only into the cached symbolic structure,
// estimated = the symbolic-elided cold multiply — all three against
// the same fresh-values matrices so the ratios are exact.
func iterCPU(a *csr.Matrix, iters int) (IterEngineResult, IterEstimationResult, error) {
	var res IterEngineResult
	var est IterEstimationResult
	opts := cpuspgemm.Options{}

	// Populate the plan once (excluded from both averages).
	_, sym, err := cpuspgemm.MultiplyPlanned(a, a, opts)
	if err != nil {
		return res, est, err
	}
	var coldTotal, warmTotal, estTotal float64
	for it := 0; it < iters; it++ {
		fresh := reseed(a, int64(1000+it))
		start := time.Now()
		if _, err := cpuspgemm.Multiply(fresh, fresh, opts); err != nil {
			return res, est, err
		}
		coldTotal += time.Since(start).Seconds()
		start = time.Now()
		_, _, st, err := cpuspgemm.MultiplyEstimated(fresh, fresh, opts)
		if err != nil {
			return res, est, err
		}
		estTotal += time.Since(start).Seconds()
		est.EstimatedRows += st.EstimatedRows
		est.FallbackRows += st.FallbackRows
		est.OverflowRows += st.OverflowRows
		start = time.Now()
		if _, err := cpuspgemm.Numeric(sym, fresh, fresh, opts); err != nil {
			return res, est, err
		}
		warmTotal += time.Since(start).Seconds()
		res.Hits++
	}
	res.Misses = 1
	res.ColdSeconds = coldTotal / float64(iters)
	res.WarmSeconds = warmTotal / float64(iters)
	res.Speedup = res.ColdSeconds / res.WarmSeconds
	res.SymbolicSeconds = res.ColdSeconds - res.WarmSeconds
	res.NumericSeconds = res.WarmSeconds
	res.HitRate = float64(res.Hits) / float64(res.Hits+res.Misses)
	est.ColdSeconds = estTotal / float64(iters)
	est.ColdSpeedup = res.ColdSeconds / est.ColdSeconds
	est.ColdOverWarm = est.ColdSeconds / res.WarmSeconds
	if est.EstimatedRows+est.FallbackRows > 0 {
		est.HitRate = float64(est.EstimatedRows) / float64(est.EstimatedRows+est.FallbackRows)
	}
	return res, est, nil
}

// iterGPU times the out-of-core engine in simulated seconds: cold
// runs have no cache, warm runs share one plan cache (and its panel
// residency) across iterations.
func iterGPU(a *csr.Matrix, iters int) (IterEngineResult, error) {
	var res IterEngineResult
	// The suite's scaling: device memory holds the inputs plus 60% of
	// the output footprint, so the run is genuinely out-of-core.
	c, err := cpuspgemm.Multiply(a, a, cpuspgemm.Options{})
	if err != nil {
		return res, err
	}
	cfg := gpusim.ScaledV100Config(c.Bytes()*6/10 + 2*a.Bytes())
	opts := core.Options{RowPanels: 4, ColPanels: 4, Async: true}

	pc := core.NewPlanCache(0)
	warmOpts := opts
	warmOpts.PlanCache = pc
	// Populate the cache (excluded from the warm average).
	if _, _, err := core.Run(a, a, cfg, warmOpts); err != nil {
		return res, err
	}
	var coldTotal, warmTotal float64
	for it := 0; it < iters; it++ {
		fresh := reseed(a, int64(2000+it))
		_, coldSt, err := core.Run(fresh, fresh, cfg, opts)
		if err != nil {
			return res, err
		}
		coldTotal += coldSt.TotalSec
		res.ColdBytesH2D += coldSt.BytesH2D
		_, warmSt, err := core.Run(fresh, fresh, cfg, warmOpts)
		if err != nil {
			return res, err
		}
		warmTotal += warmSt.TotalSec
		res.WarmBytesH2D += warmSt.BytesH2D
	}
	hits, misses, _ := pc.Counters()
	res.Hits, res.Misses = hits, misses
	res.ColdSeconds = coldTotal / float64(iters)
	res.WarmSeconds = warmTotal / float64(iters)
	res.Speedup = res.ColdSeconds / res.WarmSeconds
	res.SymbolicSeconds = res.ColdSeconds - res.WarmSeconds
	res.NumericSeconds = res.WarmSeconds
	res.HitRate = float64(hits) / float64(hits+misses)
	return res, nil
}
