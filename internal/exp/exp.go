// Package exp is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Section V) on the synthetic
// suite and the simulated CPU-GPU node.
//
// Each experiment returns a Table whose rows mirror the series the
// paper plots; cmd/spgemm-bench prints them and bench_test.go reports
// their headline numbers as benchmark metrics. EXPERIMENTS.md records
// the paper-vs-measured comparison.
package exp

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/gpusim"
	"repro/internal/matgen"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries the paper's expected band for quick comparison.
	Notes []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV renders the table as RFC-4180-ish CSV (the header row first);
// cmd/spgemm-bench -csv writes one file per experiment for plotting.
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := fmt.Fprint(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := fmt.Fprint(w, c); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Run is one suite matrix prepared for experiments: the generated
// matrix, its exact product (ground truth for calibration-free
// metrics), the chunk grid and the scaled device memory.
type Run struct {
	Entry matgen.SuiteEntry
	A     *csr.Matrix
	C     *csr.Matrix // A², computed once with the multicore CPU engine
	Flops int64
	// GridR and GridC give the chunk grid used for this matrix (the
	// paper likewise tunes the chunk size per matrix).
	GridR, GridC int
	// DevMem is the scaled device memory: large enough for the async
	// double-buffered pipeline, small enough that the full output
	// cannot reside on the device.
	DevMem int64
}

// CR returns the measured compression ratio flop(A²)/nnz(A²). Note the
// scale difference with the paper's Table II: with flops counted as 2
// per multiply-add, a collision-free product has ratio exactly 2, so
// our values sit near 2x the paper's (see EXPERIMENTS.md).
func (r *Run) CR() float64 {
	return float64(r.Flops) / float64(r.C.Nnz())
}

// Cfg returns the device configuration for this run.
func (r *Run) Cfg() gpusim.DeviceConfig {
	return gpusim.ScaledV100Config(r.DevMem)
}

// CoreOpts returns the grid portion of the core options.
func (r *Run) CoreOpts() core.Options {
	return core.Options{RowPanels: r.GridR, ColPanels: r.GridC}
}

var (
	suiteOnce sync.Once
	suiteRuns []*Run
	suiteErr  error
)

// Suite prepares (once per process) the nine matrices with their grids
// and device memory. The preparation multiplies each matrix once on
// the real multicore CPU engine to obtain exact output sizes.
func Suite() ([]*Run, error) {
	suiteOnce.Do(func() {
		for _, e := range matgen.Suite() {
			r, err := prepare(e)
			if err != nil {
				suiteErr = fmt.Errorf("exp: prepare %s: %w", e.Abbr, err)
				return
			}
			suiteRuns = append(suiteRuns, r)
		}
	})
	return suiteRuns, suiteErr
}

// MustSuite is Suite for benchmarks, panicking on failure.
func MustSuite() []*Run {
	rs, err := Suite()
	if err != nil {
		panic(err)
	}
	return rs
}

// SuiteRun returns one prepared matrix by abbreviation.
func SuiteRun(abbr string) (*Run, error) {
	rs, err := Suite()
	if err != nil {
		return nil, err
	}
	for _, r := range rs {
		if r.Entry.Abbr == abbr {
			return r, nil
		}
	}
	return nil, fmt.Errorf("exp: no suite matrix %q", abbr)
}

// RecomputeProduct runs the full multiplication of one suite matrix on
// the real multi-core CPU engine (the benchmark harness measures its
// wall time).
func RecomputeProduct(r *Run) (*csr.Matrix, error) {
	return cpuspgemm.Multiply(r.A, r.A, cpuspgemm.Options{})
}

func prepare(e matgen.SuiteEntry) (*Run, error) {
	a := e.Gen()
	c, err := cpuspgemm.Multiply(a, a, cpuspgemm.Options{})
	if err != nil {
		return nil, err
	}
	r := &Run{Entry: e, A: a, C: c, Flops: csr.Flops(a, a)}
	// Chunk grids: skewed graph matrices use a finer grid (their chunk
	// sizes vary wildly); regular matrices a coarser one. This plays
	// the role of the paper's per-matrix chunk-size tuning.
	if e.Class == "rmat" {
		r.GridR, r.GridC = 4, 4
	} else {
		// Band matrices concentrate work in near-diagonal chunks, so a
		// finer grid keeps per-chunk granularity comparable; nlp (the
		// largest, highest-ratio input) gets the finest grid, mirroring
		// the paper's per-matrix chunk-size tuning.
		r.GridR, r.GridC = 6, 5
		if e.Abbr == "nlp" {
			r.GridR, r.GridC = 8, 6
		}
	}
	// Device memory: 60% of the output footprint (so the product is
	// genuinely out-of-core) plus room for inputs and workspace.
	out := c.Bytes()
	r.DevMem = out*6/10 + 2*a.Bytes()
	return r, nil
}
