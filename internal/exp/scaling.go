package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/multigpu"
	"repro/internal/summa"
)

// ScalingGPUCounts is the device-count sweep of the scaling extension.
var ScalingGPUCounts = []int{1, 2, 4, 8}

// FigScaling is the multi-GPU scaling extension experiment (not in the
// paper — its conclusion's "continue to scale" direction): simulated
// GFLOPS vs device count, with and without the CPU assisting.
func FigScaling(runs []*Run, abbrs ...string) (*Table, error) {
	if len(abbrs) == 0 {
		abbrs = []string{"com-lj", "nlp"}
	}
	header := []string{"matrix"}
	for _, n := range ScalingGPUCounts {
		header = append(header, fmt.Sprintf("%d GPU", n))
	}
	header = append(header, fmt.Sprintf("%d GPU + CPU", ScalingGPUCounts[len(ScalingGPUCounts)-1]))
	t := &Table{
		Title:  "Extension: multi-GPU scaling (GFLOPS)",
		Header: header,
		Notes:  []string{"chunks are independent (row-column formulation), so scaling is a scheduling problem"},
	}
	for _, abbr := range abbrs {
		r := findRun(runs, abbr)
		if r == nil {
			return nil, fmt.Errorf("scaling: no matrix %q", abbr)
		}
		row := []string{abbr}
		for _, n := range ScalingGPUCounts {
			_, st, err := multigpu.Run(r.A, r.A, r.Cfg(), multigpu.Options{Core: r.CoreOpts(), NumGPUs: n})
			if err != nil {
				return nil, fmt.Errorf("scaling %s n=%d: %w", abbr, n, err)
			}
			row = append(row, fmt.Sprintf("%.3f", st.GFLOPS))
		}
		nMax := ScalingGPUCounts[len(ScalingGPUCounts)-1]
		_, st, err := multigpu.Run(r.A, r.A, r.Cfg(), multigpu.Options{
			Core: r.CoreOpts(), NumGPUs: nMax, UseCPU: true,
		})
		if err != nil {
			return nil, fmt.Errorf("scaling %s cpu-assist: %w", abbr, err)
		}
		row = append(row, fmt.Sprintf("%.3f", st.GFLOPS))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// DistributedGrids is the process-grid sweep of the SUMMA experiment.
var DistributedGrids = []int{1, 2, 4}

// FigDistributed is the distributed sparse-SUMMA extension experiment
// (the paper's reference [33] setting): GFLOPS vs cluster size.
func FigDistributed(runs []*Run, abbrs ...string) (*Table, error) {
	if len(abbrs) == 0 {
		abbrs = []string{"com-lj", "nlp"}
	}
	header := []string{"matrix"}
	for _, q := range DistributedGrids {
		header = append(header, fmt.Sprintf("%dx%d nodes", q, q))
	}
	header = append(header, "4x4 pipelined", "comm share @4x4")
	t := &Table{
		Title:  "Extension: distributed sparse SUMMA (GFLOPS)",
		Header: header,
		Notes: []string{
			"plain SUMMA on a simulated 100 Gb/s fabric, 2 GFLOP/s nodes;",
			"the pipelined column drops the stage barrier and fetches ahead ([33]'s variant).",
		},
	}
	for _, abbr := range abbrs {
		r := findRun(runs, abbr)
		if r == nil {
			return nil, fmt.Errorf("distributed: no matrix %q", abbr)
		}
		row := []string{abbr}
		var last summa.Stats
		for _, q := range DistributedGrids {
			_, st, err := summa.Run(r.A, r.A, summa.Config{Q: q})
			if err != nil {
				return nil, fmt.Errorf("distributed %s q=%d: %w", abbr, q, err)
			}
			row = append(row, fmt.Sprintf("%.3f", st.GFLOPS))
			last = st
		}
		qMax := DistributedGrids[len(DistributedGrids)-1]
		_, piped, err := summa.Run(r.A, r.A, summa.Config{Q: qMax, Pipelined: true})
		if err != nil {
			return nil, fmt.Errorf("distributed %s pipelined: %w", abbr, err)
		}
		row = append(row, fmt.Sprintf("%.3f", piped.GFLOPS))
		row = append(row, fmt.Sprintf("%.0f%%", 100*last.CommSec/(last.CommSec+last.CompSec)))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Interconnects is the bandwidth sweep of the sensitivity experiment:
// the paper's PCIe 3 node, a PCIe 4 node, and an NVLink-class link.
var Interconnects = []struct {
	Name     string
	D2H, H2D float64
}{
	{"PCIe3 (paper)", 3.0e9, 12.0e9},
	{"PCIe4", 6.0e9, 24.0e9},
	{"NVLink-class", 40.0e9, 40.0e9},
}

// SensitivityBandwidth asks how the paper's conclusions depend on the
// interconnect: for each link speed it reports the synchronous
// transfer share (Figure 4's metric), the async-over-sync gain
// (Figure 8's) and the GPU/CPU speedup (Figure 7's). Faster links
// shrink the transfer share, but the async gain GROWS toward the
// compute/transfer balance point (overlap saves min(T, C), so it is
// worth the most when the two are comparable): the paper's pipeline
// is not made obsolete by faster interconnects — it pays off more.
func SensitivityBandwidth(runs []*Run, abbr string) (*Table, error) {
	r := findRun(runs, abbr)
	if r == nil {
		return nil, fmt.Errorf("sensitivity: no matrix %q", abbr)
	}
	t := &Table{
		Title:  fmt.Sprintf("Sensitivity: interconnect bandwidth on %s", abbr),
		Header: []string{"link", "sync transfer %", "async gain %", "GPU/CPU"},
		Notes: []string{
			"overlap saves min(transfer, compute), so the async gain grows as faster",
			"links move the pipeline toward compute/transfer balance",
		},
	}
	for _, link := range Interconnects {
		cfg := r.Cfg()
		cfg.D2HBandwidth = link.D2H
		cfg.H2DBandwidth = link.H2D

		syncOpts := r.CoreOpts()
		syncOpts.DynamicAlloc = true
		_, syncSt, err := core.Run(r.A, r.A, cfg, syncOpts)
		if err != nil {
			return nil, fmt.Errorf("sensitivity %s sync: %w", link.Name, err)
		}
		asyncOpts := r.CoreOpts()
		asyncOpts.Async = true
		asyncOpts.Reorder = true
		_, asyncSt, err := core.Run(r.A, r.A, cfg, asyncOpts)
		if err != nil {
			return nil, fmt.Errorf("sensitivity %s async: %w", link.Name, err)
		}
		_, cpuSt, err := hybrid.RunCPUOnly(r.A, r.A, cfg, hybrid.HostModel{})
		if err != nil {
			return nil, fmt.Errorf("sensitivity %s cpu: %w", link.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			link.Name,
			fmt.Sprintf("%.1f", syncSt.TransferFraction*100),
			fmt.Sprintf("%.1f", (syncSt.TotalSec/asyncSt.TotalSec-1)*100),
			fmt.Sprintf("%.2f", cpuSt.TotalSec/asyncSt.TotalSec),
		})
	}
	return t, nil
}
