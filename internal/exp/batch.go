package exp

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"time"

	"repro/internal/serve"
	apiv1 "repro/spgemm/api/v1"
)

// BatchBenchReport is the machine-readable result of the batched-chain
// benchmark (-exp=batch), written to BENCH_batch.json. It measures the
// /v1/batch DAG surface against the sequential alternative it
// replaces: a 6-stage Aᵏ chain submitted as one batch (plan sharing,
// in-flight intermediates, one HTTP round trip) versus the same chain
// issued as per-stage /v1/multiply requests that round-trip every
// intermediate product through the matrix store via store_c.
type BatchBenchReport struct {
	Matrix string `json:"matrix"`
	Rows   int    `json:"rows"`
	Nnz    int64  `json:"nnz"`
	Stages int    `json:"stages"`
	// Chains is the number of timed warm chain submissions per side
	// (median reported; the cold chain that populates the plan cache is
	// reported separately).
	Chains int    `json:"chains"`
	Engine string `json:"engine"`
	// Batch is the /v1/batch side; Sequential the per-request side, on
	// an identical fresh server.
	Batch      BatchChainResult `json:"batch"`
	Sequential SeqChainResult   `json:"sequential"`
	// LatencyRatio is batch warm seconds over sequential warm seconds —
	// the acceptance target is <= 0.7. Speedup is its inverse.
	LatencyRatio float64 `json:"latency_ratio"`
	Speedup      float64 `json:"speedup"`
}

// BatchChainResult is the /v1/batch side of the comparison. The
// plan-cache numbers are the cold chain's: a block-diagonal pattern is
// closed under multiplication, so every stage shares one structural
// fingerprint pair and the whole chain pays exactly one cold symbolic
// phase (ColdSymbolic == 1, hit rate (stages-1)/stages).
type BatchChainResult struct {
	ColdSeconds      float64 `json:"cold_seconds"`
	WarmSeconds      float64 `json:"warm_seconds"`
	PlanCacheHits    int64   `json:"plan_cache_hits"`
	PlanCacheMisses  int64   `json:"plan_cache_misses"`
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
	ColdSymbolic     int64   `json:"cold_symbolic"`
}

// SeqChainResult is the sequential side: per-stage /v1/multiply with
// store_c chaining, RequestsPerChain HTTP round trips per chain.
type SeqChainResult struct {
	ColdSeconds      float64 `json:"cold_seconds"`
	WarmSeconds      float64 `json:"warm_seconds"`
	RequestsPerChain int     `json:"requests_per_chain"`
}

const (
	batchStages = 6
	batchChains = 20
	// batchWarmup chains run untimed after the cold chain on each side,
	// so the timed loop measures the steady state rather than the
	// process still faulting in code paths and growing its heap.
	batchWarmup = 3
)

// batchBenchSpec is the chain operand: dense diagonal blocks, the
// pattern-closed-under-multiplication workload (pattern(A²) ==
// pattern(A)), sized so fixed per-request costs (HTTP round trip,
// admission, store round-trips for every intermediate) are the
// dominant term next to the per-stage numeric work — the
// short-iteration regime batching targets.
var batchBenchSpec = apiv1.MatrixSpec{Kind: "blocks", N: 128, Block: 8, Seed: 7}

// BatchBench measures the tentpole acceptance numbers of the batch
// API: one cold chain (exactly one cold symbolic phase, hit rate
// >= 0.8) and the warm steady state (batch latency <= 0.7x
// sequential), each side against its own fresh server. Warm chains of
// the two sides run interleaved — batch, sequential, batch, … — so
// ambient machine noise (GC pauses, scheduler preemption) lands on
// both sides alike, and the reported warm seconds are medians, which
// a single straggler chain cannot move the way it moves a mean.
func BatchBench() (*Table, *BatchBenchReport, error) {
	rep := &BatchBenchReport{
		Matrix: fmt.Sprintf("blocks (n=%d, block=%d)", batchBenchSpec.N, batchBenchSpec.Block),
		Stages: batchStages,
		Chains: batchChains,
		Engine: "cpu",
	}

	bs, err := newBatchSide(rep)
	if err != nil {
		return nil, nil, fmt.Errorf("batch bench (batch side): %w", err)
	}
	defer bs.close()
	ss, err := newSeqSide(rep)
	if err != nil {
		return nil, nil, fmt.Errorf("batch bench (sequential side): %w", err)
	}
	defer ss.close()

	if rep.Batch.ColdSeconds, err = bs.coldChain(rep); err != nil {
		return nil, nil, fmt.Errorf("batch bench (cold batch chain): %w", err)
	}
	if rep.Sequential.ColdSeconds, err = ss.chain(); err != nil {
		return nil, nil, fmt.Errorf("batch bench (cold sequential chain): %w", err)
	}
	for w := 0; w < batchWarmup; w++ {
		if _, err := bs.chain(); err != nil {
			return nil, nil, fmt.Errorf("batch bench (warmup): %w", err)
		}
		if _, err := ss.chain(); err != nil {
			return nil, nil, fmt.Errorf("batch bench (warmup): %w", err)
		}
	}

	batchTimes := make([]float64, 0, batchChains)
	seqTimes := make([]float64, 0, batchChains)
	for c := 0; c < batchChains; c++ {
		s, err := bs.chain()
		if err != nil {
			return nil, nil, fmt.Errorf("batch bench (warm batch chain %d): %w", c, err)
		}
		batchTimes = append(batchTimes, s)
		if s, err = ss.chain(); err != nil {
			return nil, nil, fmt.Errorf("batch bench (warm sequential chain %d): %w", c, err)
		}
		seqTimes = append(seqTimes, s)
	}
	rep.Batch.WarmSeconds = median(batchTimes)
	rep.Sequential.WarmSeconds = median(seqTimes)
	rep.LatencyRatio = rep.Batch.WarmSeconds / rep.Sequential.WarmSeconds
	rep.Speedup = 1 / rep.LatencyRatio

	t := &Table{
		Title: fmt.Sprintf("Batched chain vs sequential multiplies: %s, %d stages, %d warm chains (interleaved, median)",
			rep.Matrix, batchStages, batchChains),
		Header: []string{"side", "cold chain s", "warm chain s", "requests/chain"},
		Rows: [][]string{
			{"/v1/batch (one DAG)", fmt.Sprintf("%.4f", rep.Batch.ColdSeconds),
				fmt.Sprintf("%.4f", rep.Batch.WarmSeconds), "1"},
			{"/v1/multiply (store_c chain)", fmt.Sprintf("%.4f", rep.Sequential.ColdSeconds),
				fmt.Sprintf("%.4f", rep.Sequential.WarmSeconds), fmt.Sprintf("%d", rep.Sequential.RequestsPerChain)},
		},
		Notes: []string{
			fmt.Sprintf("cold batch: %d plan-cache hits, %d misses (hit rate %.2f, target >= 0.8; cold symbolic phases: %d, target exactly 1)",
				rep.Batch.PlanCacheHits, rep.Batch.PlanCacheMisses, rep.Batch.PlanCacheHitRate, rep.Batch.ColdSymbolic),
			fmt.Sprintf("warm latency ratio batch/sequential %.2f (target <= 0.7; speedup %.2fx)",
				rep.LatencyRatio, rep.Speedup),
			"written to BENCH_batch.json by cmd/spgemm-bench -exp=batch",
		},
	}
	return t, rep, nil
}

// chainBatchRequest is the 6-stage Aᵏ chain as one DAG: stage 1 is
// A·A, stage k consumes stage k-1's in-flight output, the final stage
// persists its product.
func chainBatchRequest(handle string) apiv1.BatchRequest {
	nodes := []apiv1.BatchNode{{ID: "s1", A: apiv1.Operand{Handle: handle}}}
	for k := 2; k <= batchStages; k++ {
		n := apiv1.BatchNode{
			ID: fmt.Sprintf("s%d", k),
			A:  apiv1.Operand{Node: fmt.Sprintf("s%d", k-1)},
			B:  &apiv1.Operand{Handle: handle},
		}
		if k == batchStages {
			n.Store = true
		}
		nodes = append(nodes, n)
	}
	// One thread: the chain stages are tiny, so the multi-core fan-out
	// would cost more than the numeric work and mask the per-request
	// overheads under comparison (both sides get the same setting).
	return apiv1.BatchRequest{Engine: "cpu", Threads: 1, Nodes: nodes}
}

// batchSide is the /v1/batch half of the comparison: its own server
// and one prebuilt chain request.
type batchSide struct {
	srv *serve.Server
	ts  *httptest.Server
	cli *apiv1.Client
	req apiv1.BatchRequest
}

func newBatchSide(rep *BatchBenchReport) (*batchSide, error) {
	srv := serve.New(serve.Config{MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	cli := apiv1.NewClient(ts.URL)
	mr, err := cli.StoreMatrix(apiv1.MatrixRequest{Spec: &batchBenchSpec})
	if err != nil {
		ts.Close()
		srv.Drain(0)
		return nil, err
	}
	rep.Rows, rep.Nnz = mr.Rows, mr.Nnz
	return &batchSide{srv: srv, ts: ts, cli: cli, req: chainBatchRequest(mr.Handle)}, nil
}

func (s *batchSide) close() {
	s.ts.Close()
	s.srv.Drain(0)
}

// coldChain runs the first chain and records its plan-cache numbers —
// the acceptance evidence that the whole chain paid one symbolic phase.
func (s *batchSide) coldChain(rep *BatchBenchReport) (float64, error) {
	start := time.Now()
	resp, err := s.cli.Batch(s.req)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	if resp.Completed != batchStages {
		return 0, fmt.Errorf("cold chain: %d/%d nodes completed (failed %d, skipped %d)",
			resp.Completed, batchStages, resp.Failed, resp.Skipped)
	}
	rep.Batch.PlanCacheHits = resp.PlanCacheHits
	rep.Batch.PlanCacheMisses = resp.PlanCacheMisses
	rep.Batch.PlanCacheHitRate = resp.PlanCacheHitRate
	rep.Batch.ColdSymbolic = resp.PlanCacheMisses
	return elapsed, nil
}

func (s *batchSide) chain() (float64, error) {
	start := time.Now()
	resp, err := s.cli.Batch(s.req)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	if resp.Completed != batchStages {
		return 0, fmt.Errorf("%d/%d nodes completed", resp.Completed, batchStages)
	}
	return elapsed, nil
}

// seqSide is the per-request half: its own server, chaining stage
// products through the matrix store via store_c/c_handle.
type seqSide struct {
	srv    *serve.Server
	ts     *httptest.Server
	cli    *apiv1.Client
	handle string
}

func newSeqSide(rep *BatchBenchReport) (*seqSide, error) {
	srv := serve.New(serve.Config{MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	cli := apiv1.NewClient(ts.URL)
	mr, err := cli.StoreMatrix(apiv1.MatrixRequest{Spec: &batchBenchSpec})
	if err != nil {
		ts.Close()
		srv.Drain(0)
		return nil, err
	}
	rep.Sequential.RequestsPerChain = batchStages
	return &seqSide{srv: srv, ts: ts, cli: cli, handle: mr.Handle}, nil
}

func (s *seqSide) close() {
	s.ts.Close()
	s.srv.Drain(0)
}

func (s *seqSide) chain() (float64, error) {
	start := time.Now()
	prev := ""
	for k := 1; k <= batchStages; k++ {
		req := apiv1.MultiplyRequest{Engine: "cpu", Threads: 1, StoreC: true}
		if k == 1 {
			req.AHandle = s.handle // B defaults to A
		} else {
			req.AHandle, req.BHandle = prev, s.handle
		}
		resp, err := s.cli.Multiply(req)
		if err != nil {
			return 0, fmt.Errorf("stage %d: %w", k, err)
		}
		if resp.CHandle == "" {
			return 0, fmt.Errorf("stage %d: store_c returned no c_handle", k)
		}
		prev = resp.CHandle
	}
	return time.Since(start).Seconds(), nil
}

// median of a non-empty slice (sorts a copy).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
