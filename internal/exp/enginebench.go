package exp

import (
	"fmt"
	"io"

	"repro/internal/csr"
	"repro/internal/matgen"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/spgemm"
)

// EngineBenchReport is the machine-readable result of one registered
// engine's benchmark run (-engine=<name>), written to
// BENCH_<name>.json. Seconds is the engine's own Report time —
// wall-clock for the real-CPU engines, simulated for the device ones —
// and Snapshot is the metrics collector's flat key/value dump
// (counters plus per-lane busy times and makespans), so figure runners
// and CI trend checks read one schema for every engine. Recovery and
// Serving pin their counter families with explicit zeros — a CI trend
// check can assert "no recovery activity on the clean bench" without
// guessing whether a missing key means zero or means unrecorded.
type EngineBenchReport struct {
	Engine    string           `json:"engine"`
	Describe  string           `json:"describe"`
	Matrix    string           `json:"matrix"`
	Rows      int              `json:"rows"`
	Cols      int              `json:"cols"`
	Nnz       int64            `json:"nnz"`
	Flops     int64            `json:"flops"`
	Seconds   float64          `json:"seconds"`
	GFLOPS    float64          `json:"gflops"`
	OutputNnz int64            `json:"output_nnz"`
	Snapshot  map[string]int64 `json:"snapshot"`
	// Recovery is the run's recovery_* counter family; Serving is the
	// serving layer's snapshot for the bench job (the run goes through
	// an in-process serve.Server, so admission and completion counters
	// are exercised on every bench).
	Recovery map[string]int64 `json:"recovery"`
	Serving  map[string]int64 `json:"serving"`
}

// recoveryKeys and servingKeys pin the counter families reported with
// explicit zeros in every BENCH_<name>.json.
var recoveryKeys = []string{
	metrics.CounterRetries, metrics.CounterAbandoned, metrics.CounterFallbacks,
	metrics.CounterFailovers, metrics.CounterDevicesLost, metrics.CounterMemInUse,
}

var servingKeys = []string{
	metrics.CounterServeAccepted, metrics.CounterServeRejectedOverload,
	metrics.CounterServeRejectedQueue, metrics.CounterServeRejectedDraining,
	metrics.CounterServeCompleted, metrics.CounterServeFailed,
	metrics.CounterServePanicked, metrics.CounterServeAbandoned,
	metrics.CounterServeDegraded, metrics.CounterServeBreakerTrips,
	metrics.CounterServeBreakerProbes, metrics.CounterServeBreakerCloses,
}

func pinKeys(keys []string, src map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(keys))
	for _, k := range keys {
		out[k] = src[k]
	}
	return out
}

// EngineBench runs one registered engine on the skewed R-MAT benchmark
// matrix (the CPU bench generator, so numbers line up across engines)
// with a metrics collector attached. The run is submitted through an
// in-process serve.Server so the report also captures the serving
// layer's counters. When traceOut is non-nil the collector's Chrome
// trace is written there. It returns the printable table and the JSON
// report for BENCH_<name>.json.
func EngineBench(name string, traceOut io.Writer) (*Table, *EngineBenchReport, error) {
	if _, err := spgemm.ByName(name); err != nil {
		return nil, nil, err
	}
	a := matgen.RMAT(12, 16, 0.6, 0.19, 0.19, 7)

	m := spgemm.NewCollector()
	srv := serve.New(serve.Config{MaxConcurrent: 1})
	res, err := srv.Submit(serve.Job{Engine: name, A: a, B: a, Opts: &spgemm.RunOptions{Metrics: m}})
	serving := srv.Drain(0)
	if err != nil {
		return nil, nil, fmt.Errorf("engine %s: %w", name, err)
	}
	c, report := res.C, res.Report
	if got := c.Nnz(); got != report.OutputNnz() {
		return nil, nil, fmt.Errorf("engine %s: report nnz %d != product nnz %d", name, report.OutputNnz(), got)
	}

	rep := &EngineBenchReport{
		Engine:    name,
		Describe:  spgemm.Describe(name),
		Matrix:    "rmat-12 (scale 12, edge factor 16, a=0.6)",
		Rows:      a.Rows,
		Cols:      a.Cols,
		Nnz:       a.Nnz(),
		Flops:     csr.Flops(a, a),
		Seconds:   report.Seconds(),
		GFLOPS:    report.Throughput(),
		OutputNnz: report.OutputNnz(),
		Snapshot:  m.Snapshot(),
		Recovery:  pinKeys(recoveryKeys, res.Snapshot),
		Serving:   pinKeys(servingKeys, serving),
	}
	t := &Table{
		Title:  fmt.Sprintf("Engine %s: %s", name, rep.Matrix),
		Header: []string{"key", "value"},
		Notes: []string{
			spgemm.Describe(name),
			"seconds are the engine's Report time (wall-clock for cpu*, simulated otherwise)",
			fmt.Sprintf("written to BENCH_%s.json by cmd/spgemm-bench -engine=%s", name, name),
		},
		Rows: [][]string{
			{"seconds", fmt.Sprintf("%.4f", rep.Seconds)},
			{"GFLOPS", fmt.Sprintf("%.3f", rep.GFLOPS)},
			{"nnz(C)", fmt.Sprintf("%d", rep.OutputNnz)},
			{"flops", fmt.Sprintf("%d", rep.Flops)},
		},
	}
	for _, k := range spgemm.SnapshotKeys(rep.Snapshot) {
		t.Rows = append(t.Rows, []string{k, fmt.Sprintf("%d", rep.Snapshot[k])})
	}

	if traceOut != nil {
		if err := m.WriteChromeTrace(traceOut); err != nil {
			return nil, nil, fmt.Errorf("engine %s: chrome trace: %w", name, err)
		}
	}
	return t, rep, nil
}
