package exp

import (
	"strings"
	"testing"
)

// subset returns a one-matrix slice so runner tests stay fast.
func subset(t *testing.T, abbr string) []*Run {
	t.Helper()
	r, err := SuiteRun(abbr)
	if err != nil {
		t.Fatal(err)
	}
	return []*Run{r}
}

func TestFig9RunnerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	tab, err := Fig9(subset(t, "lj2008"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 4 {
		t.Fatalf("rows = %v", tab.Rows)
	}
}

func TestFig10Runner(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	tab, err := Fig10(MustSuite(), "nlp")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != len(Fig10Ratios)+1 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	if _, err := Fig10(MustSuite(), "bogus"); err == nil {
		t.Fatal("expected error for unknown matrix")
	}
}

func TestTable3Runner(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	rows, err := Table3Data(subset(t, "stokes"))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.BestChunks < 1 || r.FixedChunks < 1 {
		t.Fatalf("chunk counts %+v", r)
	}
	if r.LossPct < 0 {
		t.Fatalf("negative loss %.2f: the exhaustive best must not lose to the fixed ratio", r.LossPct)
	}
	tab, err := Table3(subset(t, "stokes"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("table rows = %d", len(tab.Rows))
	}
}

func TestScalingRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	tab, err := FigScaling(MustSuite(), "com-lj")
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	// GFLOPS must be non-decreasing in the GPU count.
	var prev float64
	for i := 1; i <= len(ScalingGPUCounts); i++ {
		var v float64
		if _, err := fscan(row[i], &v); err != nil {
			t.Fatal(err)
		}
		if v+1e-9 < prev {
			t.Fatalf("scaling regressed: %v", row)
		}
		prev = v
	}
}

func TestDistributedRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	tab, err := FigDistributed(MustSuite(), "com-lj")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || !strings.HasSuffix(tab.Rows[0][len(tab.Rows[0])-1], "%") {
		t.Fatalf("rows = %v", tab.Rows)
	}
}

func TestGridSweepRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	tab, err := GridSweep(MustSuite(), "soc-lj")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(GridSweepGrids) {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// At least one grid must be feasible for both modes.
	feasible := false
	for _, row := range tab.Rows {
		if row[2] != "oom" && row[3] != "oom" {
			feasible = true
		}
	}
	if !feasible {
		t.Fatal("no grid feasible")
	}
	if _, err := GridSweep(MustSuite(), "bogus"); err == nil {
		t.Fatal("expected error for unknown matrix")
	}
}

func TestAblationRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	runs := subset(t, "wiki0925")

	ub := AblationUpperBound(runs)
	if len(ub.Rows) != 1 {
		t.Fatalf("ub rows = %d", len(ub.Rows))
	}
	if w := UpperBoundWaste(runs[0]); w < 1 {
		t.Fatalf("upper bound waste %.2f < 1 (bound below actual?)", w)
	}

	um, err := AblationUnifiedMemory(runs)
	if err != nil {
		t.Fatal(err)
	}
	var speedup float64
	if _, err := fscan(um.Rows[0][3], &speedup); err != nil {
		t.Fatal(err)
	}
	if speedup <= 1 {
		t.Fatalf("out-of-core not faster than unified memory: %.2f", speedup)
	}

	split, err := AblationSplitFraction(MustSuite(), "wiki0925")
	if err != nil {
		t.Fatal(err)
	}
	if len(split.Rows) != 1 || len(split.Rows[0]) != len(SplitFractions)+1 {
		t.Fatalf("split rows = %v", split.Rows)
	}

	secs, err := BufferSweep(runs[0], []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 2 || secs[0] <= 0 {
		t.Fatalf("buffer sweep = %v", secs)
	}
}

func TestFig7Fig8RunnersTableForm(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	runs := subset(t, "soc-lj")
	f7, err := Fig7(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Rows) != 1 || len(f7.Rows[0]) != 7 {
		t.Fatalf("fig7 rows = %v", f7.Rows)
	}
	f8, err := Fig8(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Rows) != 1 {
		t.Fatalf("fig8 rows = %v", f8.Rows)
	}
	f4, err := Fig4(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Rows) != 1 {
		t.Fatalf("fig4 rows = %v", f4.Rows)
	}
}

func TestFormulationRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	tab, err := AblationFormulation(subset(t, "stokes"))
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	// At comfortable memory both formulations run; at the small device
	// row-column must survive while row-row (B resident) OOMs — the
	// Section III-A design argument.
	if row[1] == "oom" || row[2] == "oom" {
		t.Fatalf("comfortable-memory runs failed: %v", row)
	}
	if row[3] == "oom" {
		t.Fatalf("row-column failed at the small device: %v", row)
	}
	if row[4] != "oom" {
		t.Fatalf("row-row unexpectedly survived the small device: %v", row)
	}
}

func TestLocalityRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	tab, err := AblationLocality()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	var natural, shuffled, recovered float64
	if _, err := fscan(tab.Rows[0][3], &natural); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(tab.Rows[1][3], &shuffled); err != nil {
		t.Fatal(err)
	}
	if _, err := fscan(tab.Rows[2][3], &recovered); err != nil {
		t.Fatal(err)
	}
	if shuffled <= natural {
		t.Fatalf("scrambling did not hurt: %.3f vs %.3f", shuffled, natural)
	}
	if recovered > natural*1.05 {
		t.Fatalf("RCM did not recover locality: %.3f vs natural %.3f", recovered, natural)
	}
}

func TestSensitivityRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	tab, err := SensitivityBandwidth(MustSuite(), "com-lj")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Interconnects) {
		t.Fatalf("rows = %v", tab.Rows)
	}
	// Transfer share must fall monotonically with link speed; the
	// GPU/CPU speedup must rise.
	var prevShare, prevSpeedup float64 = 101, 0
	for _, row := range tab.Rows {
		var share, speedup float64
		if _, err := fscan(row[1], &share); err != nil {
			t.Fatal(err)
		}
		if _, err := fscan(row[3], &speedup); err != nil {
			t.Fatal(err)
		}
		if share >= prevShare {
			t.Fatalf("transfer share not decreasing: %v", tab.Rows)
		}
		if speedup <= prevSpeedup {
			t.Fatalf("GPU/CPU not increasing: %v", tab.Rows)
		}
		prevShare, prevSpeedup = share, speedup
	}
}

func TestPhaseBreakdownRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	tab, err := PhaseBreakdown(MustSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		var analysis, symbolic, numeric, d2h, makespan float64
		for i, out := range []*float64{&analysis, &symbolic, &numeric, nil, &d2h, &makespan} {
			if out == nil {
				continue
			}
			if _, err := fscan(row[i+1], out); err != nil {
				t.Fatal(err)
			}
		}
		// The paper's phase ordering: row analysis is "very small",
		// symbolic cheaper than numeric, transfers dominate everything.
		if !(analysis < symbolic && symbolic < numeric && numeric < d2h) {
			t.Fatalf("%s: phase ordering violated: %v", row[0], row)
		}
		// Fully pipelined: the D2H engine is busy for almost the whole
		// makespan.
		if d2h < makespan*0.85 {
			t.Fatalf("%s: d2h %.3f << makespan %.3f — pipeline not saturated", row[0], d2h, makespan)
		}
	}
}

func TestHarnessDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("suite experiment in -short mode")
	}
	r := subset(t, "wiki1104")
	a, err := Fig7Data(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7Data(r)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("harness nondeterministic:\n%+v\n%+v", a[0], b[0])
	}
}
