package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/gpusim"
	"repro/internal/sim"
	"repro/internal/speck"
)

// AblationUpperBound quantifies Section IV-B's rejection of worst-case
// allocation: for each matrix it reports how much device memory
// upper-bound sizing would reserve for the output relative to the
// exact (symbolic) sizes the pre-allocated arena uses.
func AblationUpperBound(runs []*Run) *Table {
	t := &Table{
		Title:  "Ablation A: worst-case upper bounds vs exact symbolic sizes",
		Header: []string{"matrix", "upper-bound nnz", "actual nnz", "waste factor"},
		Notes:  []string{"Section IV-B: \"the gap between upper bounds and the actual sizes are really large\""},
	}
	for _, r := range runs {
		ub := csr.RowUpperBounds(r.A, r.A)
		var total int64
		for _, u := range ub {
			total += u
		}
		t.Rows = append(t.Rows, []string{
			r.Entry.Abbr,
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", r.C.Nnz()),
			fmt.Sprintf("%.2f", float64(total)/float64(r.C.Nnz())),
		})
	}
	return t
}

// UpperBoundWaste returns the worst-case/actual output size ratio for
// one matrix (used by the benchmark harness).
func UpperBoundWaste(r *Run) float64 {
	ub := csr.RowUpperBounds(r.A, r.A)
	var total int64
	for _, u := range ub {
		total += u
	}
	return float64(total) / float64(r.C.Nnz())
}

// RunUnifiedMemory models the paper's Section I alternative: let CUDA
// unified memory page the data in and out on demand instead of
// explicit out-of-core scheduling. Inputs fault in page by page, the
// kernels run, and the (oversubscribed) output pages are written back
// at unified-memory bandwidth, with no overlap — the page-fault
// mechanism has no knowledge of the SpGEMM structure. It returns the
// simulated seconds.
func RunUnifiedMemory(r *Run) (float64, error) {
	env := sim.NewEnv()
	dev := gpusim.NewDevice(env, r.Cfg())
	cm := speck.ModelFromDevice(dev.Cfg)
	var umErr error
	env.Spawn("um", func(p *sim.Proc) {
		res, err := speck.Compute(r.A, r.A, cm)
		if err != nil {
			umErr = err
			return
		}
		dev.UMRead(p, "A", r.A.Bytes())
		dev.UMRead(p, "B", r.A.Bytes())
		dev.Kernel(p, "analysis", res.AnalysisSec)
		dev.Kernel(p, "symbolic", res.SymbolicSec)
		dev.Kernel(p, "numeric", res.NumericSec)
		// Oversubscribed output: every page eventually migrates back.
		dev.UMWrite(p, "C", res.OutputBytes)
	})
	if err := env.Run(); err != nil {
		return 0, err
	}
	if umErr != nil {
		return 0, umErr
	}
	return sim.SecondsAt(env.Now()), nil
}

// AblationUnifiedMemory compares the out-of-core framework against the
// unified-memory execution model.
func AblationUnifiedMemory(runs []*Run) (*Table, error) {
	t := &Table{
		Title:  "Ablation B: out-of-core framework vs unified memory",
		Header: []string{"matrix", "unified memory (sim ms)", "out-of-core async (sim ms)", "speedup"},
		Notes:  []string{"Section I: page faulting wastes bandwidth and adds fault overheads"},
	}
	for _, r := range runs {
		umSec, err := RunUnifiedMemory(r)
		if err != nil {
			return nil, fmt.Errorf("um %s: %w", r.Entry.Abbr, err)
		}
		opts := r.CoreOpts()
		opts.Async = true
		opts.Reorder = true
		_, st, err := core.Run(r.A, r.A, r.Cfg(), opts)
		if err != nil {
			return nil, fmt.Errorf("ooc %s: %w", r.Entry.Abbr, err)
		}
		t.Rows = append(t.Rows, []string{
			r.Entry.Abbr,
			fmt.Sprintf("%.3f", umSec*1e3),
			fmt.Sprintf("%.3f", st.TotalSec*1e3),
			fmt.Sprintf("%.2f", umSec/st.TotalSec),
		})
	}
	return t, nil
}

// SplitFractions is the sweep grid of Ablation D.
var SplitFractions = []float64{0.10, 0.25, 1.0 / 3.0, 0.50, 0.75, 0.90}

// AblationSplitFraction sweeps the first-portion fraction of the
// divided output transfer (the paper fixes 33%, Section IV-B) on two
// representative matrices.
func AblationSplitFraction(runs []*Run, abbrs ...string) (*Table, error) {
	if len(abbrs) == 0 {
		abbrs = []string{"com-lj", "nlp"}
	}
	header := []string{"matrix"}
	for _, f := range SplitFractions {
		header = append(header, fmt.Sprintf("%.0f%%", f*100))
	}
	t := &Table{
		Title:  "Ablation D: async total vs first-portion split fraction (sim ms)",
		Header: header,
		Notes:  []string{"the paper fixes the first portion at 33% of the rows"},
	}
	for _, abbr := range abbrs {
		r := findRun(runs, abbr)
		if r == nil {
			return nil, fmt.Errorf("split ablation: no matrix %q", abbr)
		}
		row := []string{abbr}
		for _, f := range SplitFractions {
			opts := r.CoreOpts()
			opts.Async = true
			opts.Reorder = true
			opts.SplitFraction = f
			_, st, err := core.Run(r.A, r.A, r.Cfg(), opts)
			if err != nil {
				return nil, fmt.Errorf("split %s f=%.2f: %w", abbr, f, err)
			}
			row = append(row, fmt.Sprintf("%.3f", st.TotalSec*1e3))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
