package faults

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

// proxyBackend is a plain HTTP server answering a fixed body big
// enough that a mid-body reset provably truncates it.
func proxyBackend(t *testing.T) *httptest.Server {
	t.Helper()
	body := strings.Repeat("x", 8192)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// oneShotClient disables keep-alives so each request is one proxied
// connection — the unit the fate schedule is drawn per.
func oneShotClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

func TestNetProxyForwardsCleanly(t *testing.T) {
	ts := proxyBackend(t)
	p := NewNetProxy(NetProxyConfig{Seed: 1, Target: strings.TrimPrefix(ts.URL, "http://")})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	client := oneShotClient(5 * time.Second)
	for i := 0; i < 3; i++ {
		resp, err := client.Get("http://" + addr)
		if err != nil {
			t.Fatalf("request %d through fault-free proxy: %v", i, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || len(data) != 8192 {
			t.Fatalf("request %d body = %d bytes, err %v", i, len(data), err)
		}
	}
	if got := p.Counts()[ProxyForwarded]; got != 3 {
		t.Fatalf("forwarded = %d, want 3", got)
	}
}

func TestNetProxyDropsAreDeterministic(t *testing.T) {
	ts := proxyBackend(t)
	run := func() []bool {
		p := NewNetProxy(NetProxyConfig{Seed: 42, Target: strings.TrimPrefix(ts.URL, "http://"), DropRate: 0.5})
		addr, err := p.Start()
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		client := oneShotClient(5 * time.Second)
		var fates []bool
		for i := 0; i < 10; i++ {
			resp, err := client.Get("http://" + addr)
			if err == nil {
				resp.Body.Close()
			}
			fates = append(fates, err == nil)
		}
		return fates
	}
	a, b := run(), run()
	dropped := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fate %d differs across identically seeded runs: %v vs %v", i, a, b)
		}
		if !a[i] {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Fatalf("drop rate 0.5 produced %d/%d drops — schedule not exercising both fates", dropped, len(a))
	}
}

func TestNetProxyMidBodyReset(t *testing.T) {
	ts := proxyBackend(t)
	p := NewNetProxy(NetProxyConfig{Seed: 7, Target: strings.TrimPrefix(ts.URL, "http://"), ResetRate: 1})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := oneShotClient(5 * time.Second).Get("http://" + addr)
	if err == nil {
		// The status line may squeeze through ResetAfterBytes; the body
		// must then fail mid-read.
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("reset fate delivered a complete response")
	}
	if got := p.Counts()[ProxyReset]; got != 1 {
		t.Fatalf("reset count = %d, want 1", got)
	}
}

func TestNetProxyLatencyTripsClientTimeout(t *testing.T) {
	ts := proxyBackend(t)
	p := NewNetProxy(NetProxyConfig{
		Seed: 3, Target: strings.TrimPrefix(ts.URL, "http://"),
		LatencyRate: 1, Latency: 300 * time.Millisecond,
	})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	_, err = oneShotClient(50 * time.Millisecond).Get("http://" + addr)
	var ne net.Error
	if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("slow-peer fate error = %v, want a timeout", err)
	}
	// The same proxy without the tight budget still answers.
	resp, err := oneShotClient(5 * time.Second).Get("http://" + addr)
	if err != nil {
		t.Fatalf("patient client through slow proxy: %v", err)
	}
	resp.Body.Close()
}

func TestNetProxyPartitionRefusesAndHeals(t *testing.T) {
	ts := proxyBackend(t)
	p := NewNetProxy(NetProxyConfig{Seed: 9, Target: strings.TrimPrefix(ts.URL, "http://")})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if err := p.Partition(true); err != nil {
		t.Fatal(err)
	}
	_, err = oneShotClient(2 * time.Second).Get("http://" + addr)
	if err == nil || !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("partitioned proxy error = %v, want connection refused", err)
	}
	if err := p.Partition(false); err != nil {
		t.Fatal(err)
	}
	resp, err := oneShotClient(2 * time.Second).Get("http://" + addr)
	if err != nil {
		t.Fatalf("healed partition still failing: %v", err)
	}
	resp.Body.Close()
}
