// Package faults is the deterministic fault-injection layer of the
// simulated device stack. A seeded Injector attached to a
// gpusim.Device decides, per device operation and in simulation order,
// whether the operation fails transiently (transfer or kernel fault),
// runs slow (straggler), or whether the whole device has died; it also
// applies steady out-of-memory pressure by shrinking the usable
// capacity. Because the discrete-event kernel schedules processes
// deterministically, the same seed and configuration replay the exact
// same fault sequence on the virtual clock — every failure scenario is
// a reproducible test case.
//
// The package also defines the error taxonomy the recovery machinery
// dispatches on:
//
//   - ErrTransfer, ErrKernel: transient operation faults. Recoverable
//     by retrying the operation (core's per-chunk retry budget).
//   - ErrOOM: a device allocation exceeded usable memory. Recoverable
//     by shedding work (finer chunk grids, CPU fallback).
//   - ErrDeviceLost: the device is permanently gone; every subsequent
//     operation fails. Recoverable only by failing over to another
//     device or the CPU.
//   - ErrChunkAbandoned: a chunk exhausted its retry budget; the
//     engines fall back (hybrid), redistribute (multigpu) or surface
//     the error (gpu-only).
//   - ErrDeadline: the run exceeded its configured deadline. Terminal.
//
// All Injector methods are nil-safe: a nil *Injector is the disabled
// state, so the fault-free hot path costs one pointer comparison.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Sentinel errors of the taxonomy. Device and engine code wraps them
// with chunk/device context; callers classify with errors.Is.
var (
	// ErrTransfer is a transient DMA-transfer fault (the simulated
	// analogue of a PCIe CRC error or DMA engine hiccup).
	ErrTransfer = errors.New("transient transfer fault")
	// ErrKernel is a transient kernel-execution fault (the simulated
	// analogue of a launch failure or an ECC retry).
	ErrKernel = errors.New("transient kernel fault")
	// ErrOOM is a device memory exhaustion.
	ErrOOM = errors.New("device out of memory")
	// ErrDeviceLost is a permanent device failure: all subsequent
	// operations on the device fail with it.
	ErrDeviceLost = errors.New("device lost")
	// ErrChunkAbandoned marks a chunk whose retry budget is exhausted.
	ErrChunkAbandoned = errors.New("chunk abandoned after retries")
	// ErrDeadline marks a run that exceeded its deadline.
	ErrDeadline = errors.New("deadline exceeded")
	// ErrOverloaded is the serving layer's load-shed rejection: the
	// job was never admitted because running it would exceed the
	// server's capacity. Retry later (serve.OverloadError carries the
	// retry-after hint) or against another replica.
	ErrOverloaded = errors.New("server overloaded")
	// ErrQueueFull is the serving layer's admission-queue rejection:
	// the bounded queue had no slot. Like ErrOverloaded it means the
	// job never ran.
	ErrQueueFull = errors.New("admission queue full")
	// ErrJobPanic marks a job whose engine panicked; the serving layer
	// converts the panic into this typed error so one crashed job
	// cannot take the server down.
	ErrJobPanic = errors.New("job panicked")
	// ErrReplicaDown marks a cluster replica that could not be reached
	// (killed, partitioned, or failing its health probes). Like the
	// shedding errors it means the request was never admitted on that
	// replica; the coordinator fails over to a ring successor, and a
	// request that exhausts every replica surfaces it to the client.
	ErrReplicaDown = errors.New("replica down")
)

// Transient reports whether err is a retryable per-operation fault.
func Transient(err error) bool {
	return errors.Is(err, ErrTransfer) || errors.Is(err, ErrKernel)
}

// Shedding reports whether err is a pre-admission rejection
// (ErrOverloaded or ErrQueueFull): the job never started, so the
// caller may safely retry it — later, or on another server.
func Shedding(err error) bool {
	return errors.Is(err, ErrOverloaded) || errors.Is(err, ErrQueueFull)
}

// RecoverySignal is one run's recovery activity in the form a serving
// circuit breaker consumes: the recovery_* counters the engines
// publish, plus the run's terminal error. A breaker accumulates
// signals per engine and trips when they cross its thresholds.
type RecoverySignal struct {
	// Retries, Abandoned, Failovers and DevicesLost mirror the
	// metrics counters of the same names.
	Retries, Abandoned, Failovers, DevicesLost int64
	// Err is the run's terminal error (nil on success — a run that
	// recovered internally still reports its counters above).
	Err error
}

// SignalFromCounters extracts a RecoverySignal from a flat counter
// snapshot (Collector.Snapshot or Report.Counters output). Lost
// devices are visible through two counters that may disagree:
// "recovery_devices_lost" (engines with a failover path, e.g.
// multigpu) and "faults_injected_lost" (every injector, including
// engines like hybrid that absorb the loss via CPU fallback without a
// failover counter). The signal takes the larger so a loss is never
// invisible to a breaker, and never double-counted.
func SignalFromCounters(c map[string]int64, err error) RecoverySignal {
	lost := c["recovery_devices_lost"]
	if v := c["faults_injected_lost"]; v > lost {
		lost = v
	}
	return RecoverySignal{
		Retries:     c["recovery_retries"],
		Abandoned:   c["recovery_abandoned"],
		Failovers:   c["recovery_failovers"],
		DevicesLost: lost,
		Err:         err,
	}
}

// Failed reports whether the run ended with an engine failure a
// breaker should count. Pre-admission shedding and deadline aborts are
// excluded: they say nothing about the engine's health.
func (s RecoverySignal) Failed() bool {
	return s.Err != nil && !Shedding(s.Err) && !errors.Is(s.Err, ErrDeadline)
}

// Healthy reports whether the run completed without any recovery
// activity at all — the condition a half-open breaker probe requires
// to close the circuit.
func (s RecoverySignal) Healthy() bool {
	return s.Err == nil && s.DevicesLost == 0 && s.Abandoned == 0 && s.Failovers == 0
}

// Config describes one device's fault behaviour. The zero value is
// fully disabled. All rates are per-operation probabilities in [0, 1].
type Config struct {
	// Seed feeds the injector's RNG; runs with equal Seed and rates
	// replay identical fault sequences.
	Seed int64
	// TransferRate is the transient-failure probability per DMA
	// transfer; KernelRate the same per kernel launch.
	TransferRate float64
	KernelRate   float64
	// StragglerRate is the probability an operation runs slow, and
	// StragglerFactor the duration multiplier applied when it does
	// (0 means 4x).
	StragglerRate   float64
	StragglerFactor float64
	// OOMShrink withholds this fraction of device memory, modeling
	// co-tenant pressure: usable capacity becomes (1-OOMShrink) of the
	// configured MemoryBytes.
	OOMShrink float64
	// LossAfterOps kills the device permanently after that many device
	// operations (transfers + kernels + allocations); 0 disables.
	LossAfterOps int
	// MaxFaults caps the total number of injected transfer/kernel
	// faults; 0 means unlimited.
	MaxFaults int
}

// Enabled reports whether the configuration injects anything.
func (c Config) Enabled() bool {
	return c.TransferRate > 0 || c.KernelRate > 0 || c.StragglerRate > 0 ||
		c.OOMShrink > 0 || c.LossAfterOps > 0
}

// Validate rejects configurations outside the model's domain.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"rate", c.TransferRate}, {"kernelrate", c.KernelRate},
		{"straggler", c.StragglerRate}, {"oomshrink", c.OOMShrink},
	} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("faults: %s %g outside [0, 1)", r.name, r.v)
		}
	}
	if c.StragglerFactor < 0 {
		return fmt.Errorf("faults: negative straggler factor %g", c.StragglerFactor)
	}
	if c.LossAfterOps < 0 || c.MaxFaults < 0 {
		return fmt.Errorf("faults: negative op count")
	}
	return nil
}

// Derive returns the configuration re-seeded for one device of a
// multi-device run, so each device replays an independent but still
// deterministic fault stream.
func (c Config) Derive(device int) Config {
	c.Seed = c.Seed*1000003 + int64(device)*7919 + 1
	return c
}

// Injector is one device's fault source. It must only be used from
// simulation processes (the sim kernel runs exactly one at a time, so
// no locking is needed and draw order is deterministic).
type Injector struct {
	cfg  Config
	rng  *rand.Rand
	ops  int
	dead bool

	transfers  int64 // injected transfer faults
	kernels    int64 // injected kernel faults
	stragglers int64 // slowed operations
}

// New creates an injector; a disabled config returns nil, which every
// method accepts.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Lost reports whether the device has permanently failed.
func (i *Injector) Lost() bool { return i != nil && i.dead }

// MarkLost kills the device immediately (used by tests and by
// scenarios that model an external loss event).
func (i *Injector) MarkLost() {
	if i != nil {
		i.dead = true
	}
}

// Shrink returns the bytes withheld from a device of the given
// capacity by OOM pressure.
func (i *Injector) Shrink(capacity int64) int64 {
	if i == nil || i.cfg.OOMShrink <= 0 {
		return 0
	}
	return int64(float64(capacity) * i.cfg.OOMShrink)
}

// step advances the op counter and applies the loss schedule.
func (i *Injector) step() {
	i.ops++
	if i.cfg.LossAfterOps > 0 && i.ops >= i.cfg.LossAfterOps {
		i.dead = true
	}
}

// budgetLeft reports whether another fault may be injected.
func (i *Injector) budgetLeft() bool {
	return i.cfg.MaxFaults == 0 || i.transfers+i.kernels < int64(i.cfg.MaxFaults)
}

// op makes the per-operation decision shared by transfers and kernels:
// device-lost check, one failure draw, one straggler draw.
func (i *Injector) op(rate float64, count *int64, sentinel error) (slowdown float64, err error) {
	if i.dead {
		return 1, ErrDeviceLost
	}
	i.step()
	if i.dead {
		return 1, ErrDeviceLost
	}
	if rate > 0 && i.budgetLeft() && i.rng.Float64() < rate {
		*count++
		return 1, sentinel
	}
	if i.cfg.StragglerRate > 0 && i.rng.Float64() < i.cfg.StragglerRate {
		i.stragglers++
		f := i.cfg.StragglerFactor
		if f == 0 {
			f = 4
		}
		return f, nil
	}
	return 1, nil
}

// Transfer decides the fate of one DMA transfer: an error (ErrTransfer
// or ErrDeviceLost), or a duration multiplier (1 when healthy).
func (i *Injector) Transfer() (slowdown float64, err error) {
	if i == nil {
		return 1, nil
	}
	return i.op(i.cfg.TransferRate, &i.transfers, ErrTransfer)
}

// Kernel decides the fate of one kernel launch.
func (i *Injector) Kernel() (slowdown float64, err error) {
	if i == nil {
		return 1, nil
	}
	return i.op(i.cfg.KernelRate, &i.kernels, ErrKernel)
}

// Alloc decides the fate of one allocation-class operation (Malloc,
// Free, Reserve): only device loss applies; allocations do not fault
// transiently, they fail for real when usable memory runs out.
func (i *Injector) Alloc() error {
	if i == nil {
		return nil
	}
	if i.dead {
		return ErrDeviceLost
	}
	i.step()
	if i.dead {
		return ErrDeviceLost
	}
	return nil
}

// Counts reports the injected-event totals, keyed for the metrics
// layer: "transfer", "kernel", "straggler", "lost".
func (i *Injector) Counts() map[string]int64 {
	if i == nil {
		return nil
	}
	out := map[string]int64{
		"transfer":  i.transfers,
		"kernel":    i.kernels,
		"straggler": i.stragglers,
	}
	if i.dead {
		out["lost"] = 1
	}
	return out
}

// Injected returns the total transfer+kernel faults injected so far —
// the quantity the recovery counters must reconcile with.
func (i *Injector) Injected() int64 {
	if i == nil {
		return 0
	}
	return i.transfers + i.kernels
}

// ParseSpec parses the CLI fault specification, a comma-separated
// key=value list:
//
//	seed=7,rate=0.02,kernelrate=0.01,straggler=0.05,factor=4,
//	oomshrink=0.25,loseafter=40,maxfaults=100
//
// "rate" sets both TransferRate and KernelRate; a later explicit
// kernelrate overrides the kernel half. An empty spec is disabled.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("faults: bad spec element %q (want key=value)", kv)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		switch k {
		case "seed", "loseafter", "maxfaults":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: bad %s %q", k, v)
			}
			switch k {
			case "seed":
				cfg.Seed = n
			case "loseafter":
				cfg.LossAfterOps = int(n)
			case "maxfaults":
				cfg.MaxFaults = int(n)
			}
		case "rate", "kernelrate", "straggler", "factor", "oomshrink":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: bad %s %q", k, v)
			}
			switch k {
			case "rate":
				cfg.TransferRate = f
				cfg.KernelRate = f
			case "kernelrate":
				cfg.KernelRate = f
			case "straggler":
				cfg.StragglerRate = f
			case "factor":
				cfg.StragglerFactor = f
			case "oomshrink":
				cfg.OOMShrink = f
			}
		default:
			return cfg, fmt.Errorf("faults: unknown spec key %q", k)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
