package faults

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// NetProxy is a seeded TCP fault proxy: it forwards connections to a
// target address while injecting the network's failure modes on a
// deterministic schedule — added latency (slow peer), dropped
// connections (accept, then RST before a byte flows), and mid-body
// resets (forward the exchange, then RST after N response bytes). A
// Partition toggle closes the listening socket entirely, so dials see
// connection refused — the one failure a live proxy process cannot
// fake by misbehaving on an accepted connection.
//
// Fates are drawn per accepted connection from the seeded RNG, in
// accept order, so a test driving requests sequentially over
// keep-alive-disabled connections replays the identical fault sequence
// for a seed. This is internal/faults' philosophy applied to the wire:
// chaos you can put in a regression test.
type NetProxyConfig struct {
	// Seed feeds the fate RNG.
	Seed int64
	// Listen is the address to listen on ("" means 127.0.0.1:0).
	Listen string
	// Target is the backend address (host:port) connections forward to.
	Target string
	// DropRate is the per-connection probability of an immediate RST
	// before any byte is forwarded.
	DropRate float64
	// ResetRate is the per-connection probability the response is cut
	// by an RST after ResetAfterBytes bytes have flowed back.
	ResetRate float64
	// ResetAfterBytes bounds how much of the response escapes before a
	// reset fate fires (0 means 64 — enough for the status line, so the
	// client sees a truncated body, not a clean refusal).
	ResetAfterBytes int
	// LatencyRate is the per-connection probability of Latency being
	// injected before forwarding begins (a slow peer).
	LatencyRate float64
	// Latency is the injected delay for latency fates.
	Latency time.Duration
}

// NetProxy fates, as counted in Counts().
const (
	ProxyForwarded = "forwarded"
	ProxyDropped   = "dropped"
	ProxyDelayed   = "delayed"
	ProxyReset     = "reset"
)

// NetProxy is the running proxy; create with NewNetProxy, then Start.
type NetProxy struct {
	cfg NetProxyConfig

	mu          sync.Mutex
	rng         *rand.Rand
	ln          net.Listener
	addr        string
	partitioned bool
	closed      bool
	counts      map[string]int64
	wg          sync.WaitGroup
}

// NewNetProxy builds a proxy for the config; Start begins listening.
func NewNetProxy(cfg NetProxyConfig) *NetProxy {
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.ResetAfterBytes <= 0 {
		cfg.ResetAfterBytes = 64
	}
	return &NetProxy{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: map[string]int64{},
	}
}

// Start listens and begins accepting. Returns the proxy's dialable
// address (resolved port when Listen was :0).
func (p *NetProxy) Start() (string, error) {
	ln, err := net.Listen("tcp", p.cfg.Listen)
	if err != nil {
		return "", fmt.Errorf("netproxy: %w", err)
	}
	p.mu.Lock()
	p.ln = ln
	p.addr = ln.Addr().String()
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return p.addr, nil
}

// Addr returns the proxy's listen address.
func (p *NetProxy) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// Partition closes (true) or reopens (false) the listening socket.
// While partitioned, dials to the proxy's address are refused by the
// OS — indistinguishable from the process being gone.
func (p *NetProxy) Partition(on bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("netproxy: closed")
	}
	if on == p.partitioned {
		return nil
	}
	if on {
		p.partitioned = true
		if p.ln != nil {
			_ = p.ln.Close()
			p.ln = nil
		}
		return nil
	}
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return fmt.Errorf("netproxy: heal partition: %w", err)
	}
	p.partitioned = false
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return nil
}

// Close shuts the proxy down for good.
func (p *NetProxy) Close() {
	p.mu.Lock()
	p.closed = true
	if p.ln != nil {
		_ = p.ln.Close()
		p.ln = nil
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Counts returns a copy of the per-fate counters.
func (p *NetProxy) Counts() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.counts))
	for k, v := range p.counts {
		out[k] = v
	}
	return out
}

func (p *NetProxy) count(fate string) {
	p.mu.Lock()
	p.counts[fate]++
	p.mu.Unlock()
}

// fate draws one connection's fate under the lock, in accept order.
func (p *NetProxy) fate() (drop, reset, delay bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.DropRate > 0 && p.rng.Float64() < p.cfg.DropRate {
		return true, false, false
	}
	if p.cfg.ResetRate > 0 && p.rng.Float64() < p.cfg.ResetRate {
		return false, true, false
	}
	if p.cfg.LatencyRate > 0 && p.rng.Float64() < p.cfg.LatencyRate {
		return false, false, true
	}
	return false, false, false
}

func (p *NetProxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		drop, reset, delay := p.fate()
		p.wg.Add(1)
		go p.handle(conn, drop, reset, delay)
	}
}

// rstClose closes with SO_LINGER 0, so the peer sees a hard RST rather
// than a graceful FIN — the signature of a process dying mid-exchange.
func rstClose(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = conn.Close()
}

func (p *NetProxy) handle(client net.Conn, drop, reset, delay bool) {
	defer p.wg.Done()
	if drop {
		p.count(ProxyDropped)
		rstClose(client)
		return
	}
	if delay {
		p.count(ProxyDelayed)
		time.Sleep(p.cfg.Latency)
	}
	backend, err := net.Dial("tcp", p.cfg.Target)
	if err != nil {
		rstClose(client)
		return
	}
	// Request side: pump client → backend until the client closes.
	go func() {
		_, _ = io.Copy(backend, client)
		if tc, ok := backend.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()
	if reset {
		// Forward just enough of the response for the client to have
		// started decoding, then RST both sides.
		_, _ = io.CopyN(client, backend, int64(p.cfg.ResetAfterBytes))
		p.count(ProxyReset)
		rstClose(client)
		rstClose(backend)
		return
	}
	_, _ = io.Copy(client, backend)
	p.count(ProxyForwarded)
	_ = client.Close()
	_ = backend.Close()
}
