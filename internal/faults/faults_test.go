package faults

import (
	"errors"
	"testing"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var inj *Injector
	if inj.Lost() {
		t.Fatal("nil injector reports lost")
	}
	if s, err := inj.Transfer(); s != 1 || err != nil {
		t.Fatalf("nil Transfer = (%g, %v)", s, err)
	}
	if s, err := inj.Kernel(); s != 1 || err != nil {
		t.Fatalf("nil Kernel = (%g, %v)", s, err)
	}
	if err := inj.Alloc(); err != nil {
		t.Fatalf("nil Alloc = %v", err)
	}
	if got := inj.Shrink(1 << 30); got != 0 {
		t.Fatalf("nil Shrink = %d", got)
	}
	if inj.Counts() != nil || inj.Injected() != 0 {
		t.Fatal("nil injector reports counts")
	}
}

func TestNewDisabledConfigReturnsNil(t *testing.T) {
	if New(Config{Seed: 42}) != nil {
		t.Fatal("rate-free config should produce a nil injector")
	}
}

func TestDeterministicSequence(t *testing.T) {
	cfg := Config{Seed: 7, TransferRate: 0.3, KernelRate: 0.2, StragglerRate: 0.1}
	run := func() []string {
		inj := New(cfg)
		var seq []string
		for op := 0; op < 200; op++ {
			var s float64
			var err error
			if op%2 == 0 {
				s, err = inj.Transfer()
			} else {
				s, err = inj.Kernel()
			}
			switch {
			case err != nil:
				seq = append(seq, err.Error())
			case s != 1:
				seq = append(seq, "slow")
			default:
				seq = append(seq, "ok")
			}
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: %q vs %q — fault sequence not deterministic", i, a[i], b[i])
		}
	}
}

func TestFaultRatesRoughlyHonored(t *testing.T) {
	inj := New(Config{Seed: 1, TransferRate: 0.25})
	faults := 0
	const n = 4000
	for op := 0; op < n; op++ {
		if _, err := inj.Transfer(); err != nil {
			if !errors.Is(err, ErrTransfer) {
				t.Fatalf("unexpected error %v", err)
			}
			faults++
		}
	}
	if faults < n/8 || faults > n/2 {
		t.Fatalf("%d faults out of %d at rate 0.25", faults, n)
	}
	if inj.Injected() != int64(faults) {
		t.Fatalf("Injected() = %d, observed %d", inj.Injected(), faults)
	}
}

func TestLossAfterOps(t *testing.T) {
	inj := New(Config{Seed: 3, LossAfterOps: 5})
	for op := 0; op < 4; op++ {
		if _, err := inj.Transfer(); err != nil {
			t.Fatalf("op %d failed early: %v", op, err)
		}
	}
	if _, err := inj.Transfer(); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("op 5 should lose the device, got %v", err)
	}
	if !inj.Lost() {
		t.Fatal("Lost() false after loss")
	}
	if _, err := inj.Kernel(); !errors.Is(err, ErrDeviceLost) {
		t.Fatal("lost device still runs kernels")
	}
	if err := inj.Alloc(); !errors.Is(err, ErrDeviceLost) {
		t.Fatal("lost device still allocates")
	}
	if inj.Counts()["lost"] != 1 {
		t.Fatal("Counts missing lost=1")
	}
}

func TestMaxFaultsCapsInjection(t *testing.T) {
	inj := New(Config{Seed: 5, TransferRate: 0.9, MaxFaults: 3})
	for op := 0; op < 500; op++ {
		inj.Transfer()
	}
	if inj.Injected() != 3 {
		t.Fatalf("injected %d faults with MaxFaults=3", inj.Injected())
	}
}

func TestStragglerSlowdown(t *testing.T) {
	inj := New(Config{Seed: 11, StragglerRate: 0.5, StragglerFactor: 6})
	slow := 0
	for op := 0; op < 400; op++ {
		s, err := inj.Kernel()
		if err != nil {
			t.Fatalf("straggler-only config errored: %v", err)
		}
		if s != 1 {
			if s != 6 {
				t.Fatalf("slowdown %g, want 6", s)
			}
			slow++
		}
	}
	if slow == 0 {
		t.Fatal("no stragglers at rate 0.5")
	}
	if int64(slow) != inj.Counts()["straggler"] {
		t.Fatalf("straggler count %d != observed %d", inj.Counts()["straggler"], slow)
	}
}

func TestShrink(t *testing.T) {
	inj := New(Config{Seed: 1, OOMShrink: 0.25})
	if got := inj.Shrink(1000); got != 250 {
		t.Fatalf("Shrink(1000) = %d, want 250", got)
	}
}

func TestDeriveChangesSeedOnly(t *testing.T) {
	base := Config{Seed: 9, TransferRate: 0.1}
	d0, d1 := base.Derive(0), base.Derive(1)
	if d0.Seed == d1.Seed {
		t.Fatal("derived seeds collide")
	}
	if d0.TransferRate != base.TransferRate {
		t.Fatal("Derive changed rates")
	}
	if base.Derive(1).Seed != d1.Seed {
		t.Fatal("Derive not deterministic")
	}
}

func TestTransientClassification(t *testing.T) {
	if !Transient(ErrTransfer) || !Transient(ErrKernel) {
		t.Fatal("transfer/kernel faults must be transient")
	}
	for _, err := range []error{ErrDeviceLost, ErrOOM, ErrDeadline, ErrChunkAbandoned, nil} {
		if Transient(err) {
			t.Fatalf("%v misclassified as transient", err)
		}
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7, rate=0.02, straggler=0.05, factor=3, oomshrink=0.25, loseafter=40, maxfaults=9")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, TransferRate: 0.02, KernelRate: 0.02,
		StragglerRate: 0.05, StragglerFactor: 3, OOMShrink: 0.25,
		LossAfterOps: 40, MaxFaults: 9}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}

	cfg, err = ParseSpec("rate=0.1,kernelrate=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TransferRate != 0.1 || cfg.KernelRate != 0.5 {
		t.Fatalf("kernelrate override broken: %+v", cfg)
	}

	if cfg, err := ParseSpec("  "); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec = (%+v, %v)", cfg, err)
	}
	for _, bad := range []string{"rate", "rate=x", "nope=1", "rate=1.5", "seed=abc"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
