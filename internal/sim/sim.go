// Package sim is a deterministic discrete-event simulation kernel.
//
// The out-of-core SpGEMM framework reproduces a CUDA system whose
// performance story is entirely about *scheduling*: which kernel may
// overlap which transfer, which operations serialize the device, and in
// what order chunks are processed. This kernel provides the virtual
// time base for that model: processes are goroutines that run real Go
// code and advance a shared virtual clock by sleeping, waiting on
// signals, and queueing on FIFO resources.
//
// Exactly one process runs at a time (control is handed between the
// kernel and processes over unbuffered channels), so process code may
// touch shared state without locks, and a simulation is a deterministic
// function of its inputs: ties in wake-up time are broken by scheduling
// sequence number.
package sim

import (
	"container/heap"
	"fmt"
	"strings"
)

// Time is a point in virtual time, in nanoseconds from simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Seconds converts a floating-point number of seconds to a Duration,
// rounding to the nearest nanosecond.
func Seconds(s float64) Duration {
	return Duration(s*1e9 + 0.5)
}

// SecondsOf converts a Duration to floating-point seconds.
func SecondsOf(d Duration) float64 { return float64(d) / 1e9 }

// SecondsAt converts a Time to floating-point seconds.
func SecondsAt(t Time) float64 { return float64(t) / 1e9 }

// Env is a simulation environment: a virtual clock plus the set of
// processes and pending events.
type Env struct {
	now   Time
	seq   uint64
	q     timerHeap
	kern  chan struct{} // process -> kernel handoff
	live  int           // spawned but unfinished processes
	procs []*Proc       // all spawned processes, for diagnostics
	cur   *Proc

	// Timeline is the span trace recorded via Proc.Span; the gpusim
	// package uses it to reconstruct figures such as the paper's Fig 4
	// (time spent in data transfer vs. total).
	Timeline []Span
}

// Span is one traced interval of simulated work.
type Span struct {
	Start, End Time
	// Lane names the resource or actor ("d2h", "kernel", "cpu", ...).
	Lane string
	// Label describes the work ("numeric chunk 3", ...).
	Label string
}

// NewEnv creates an empty simulation.
func NewEnv() *Env {
	return &Env{kern: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Proc is a simulated process. Its methods must only be called from the
// process's own goroutine (the function passed to Spawn).
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	// parked marks a process waiting on a Signal or Resource rather
	// than a timer; used for deadlock diagnostics.
	parked string
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

type timerItem struct {
	at   Time
	seq  uint64
	proc *Proc
}

type timerHeap []timerItem

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)      { *h = append(*h, x.(timerItem)) }
func (h *timerHeap) Pop() any        { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (e *Env) push(at Time, p *Proc) { heap.Push(&e.q, timerItem{at, e.next(), p}); p.parked = "" }
func (e *Env) next() uint64          { e.seq++; return e.seq }

// Spawn registers a new process that will start at the current virtual
// time once Run (or the current process) yields control.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume // wait for first scheduling
		fn(p)
		e.live--
		e.kern <- struct{}{} // hand control back; this goroutine ends
	}()
	e.procs = append(e.procs, p)
	e.push(e.now, p)
	return p
}

// Run executes the simulation until no events remain. It returns an
// error if processes remain parked with no pending events (deadlock).
func (e *Env) Run() error {
	for e.q.Len() > 0 {
		it := heap.Pop(&e.q).(timerItem)
		if it.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = it.at
		e.cur = it.proc
		it.proc.resume <- struct{}{}
		<-e.kern
	}
	e.cur = nil
	if e.live > 0 {
		// Name the stuck processes: a deadlock report that only counts
		// them sends the reader straight back here with a debugger.
		var stuck []string
		for _, p := range e.procs {
			if p.parked != "" {
				stuck = append(stuck, fmt.Sprintf("%s (%s)", p.name, p.parked))
			}
		}
		return fmt.Errorf("sim: deadlock: %d process(es) still parked: %s",
			e.live, strings.Join(stuck, "; "))
	}
	return nil
}

// yield hands control back to the kernel and waits to be resumed.
func (p *Proc) yield() {
	p.env.kern <- struct{}{}
	<-p.resume
}

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %d", d))
	}
	p.env.push(p.env.now+Time(d), p)
	p.yield()
}

// Span sleeps for d and records the interval on the timeline under the
// given lane and label.
func (p *Proc) Span(lane, label string, d Duration) {
	start := p.env.now
	p.Sleep(d)
	p.env.Timeline = append(p.env.Timeline, Span{Start: start, End: p.env.now, Lane: lane, Label: label})
}

// park suspends the process without scheduling a wake-up; something
// else (a Signal fire or Resource release) must push it back.
func (p *Proc) park(why string) {
	p.parked = why
	p.yield()
}

// Signal is a one-shot broadcast event in virtual time. The zero value
// is ready to use.
type Signal struct {
	fired   bool
	waiters []*Proc
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire marks the signal fired and wakes all waiters at the current
// virtual time. Firing twice is a no-op. Must be called from process
// context.
func (s *Signal) Fire(p *Proc) {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		p.env.push(p.env.now, w)
	}
	s.waiters = nil
}

// Await blocks the process until the signal fires. If the signal has
// already fired it returns immediately without advancing time.
func (p *Proc) Await(s *Signal) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park("await signal")
}

// AwaitAll waits for every signal in order.
func (p *Proc) AwaitAll(sigs ...*Signal) {
	for _, s := range sigs {
		p.Await(s)
	}
}

// Resource is a FIFO resource with integer capacity (capacity 1 gives a
// mutex; the GPU's per-direction DMA engines are capacity-1 resources).
type Resource struct {
	name     string
	capacity int
	inUse    int
	queue    []*Proc
	// Busy accumulates the total virtual time this resource spent with
	// at least one unit in use, for utilization accounting.
	Busy      Duration
	busySince Time
}

// NewResource creates a FIFO resource.
func NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Acquire takes one unit of the resource, queueing FIFO if none is
// available. It does not advance time when a unit is free.
func (p *Proc) Acquire(r *Resource) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.grant(p)
		return
	}
	r.queue = append(r.queue, p)
	p.park("acquire " + r.name)
}

func (r *Resource) grant(p *Proc) {
	if r.inUse == 0 {
		r.busySince = p.env.now
	}
	r.inUse++
}

// Release returns one unit and hands it to the first waiter, if any.
func (p *Proc) Release(r *Resource) {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	r.inUse--
	if r.inUse == 0 {
		r.Busy += Duration(p.env.now - r.busySince)
	}
	if len(r.queue) > 0 {
		w := r.queue[0]
		r.queue = r.queue[1:]
		r.grant(w) // transfer ownership before the waiter resumes
		p.env.push(p.env.now, w)
	}
}

// Use acquires the resource, holds it for d (recording a span), and
// releases it. This is the common shape of a kernel launch or DMA
// transfer.
func (p *Proc) Use(r *Resource, label string, d Duration) {
	p.Acquire(r)
	p.Span(r.name, label, d)
	p.Release(r)
}

// LaneBusy sums the traced span time for one lane of the timeline.
func (e *Env) LaneBusy(lane string) Duration {
	var total Duration
	for _, s := range e.Timeline {
		if s.Lane == lane {
			total += Duration(s.End - s.Start)
		}
	}
	return total
}
