package sim

import (
	"strings"
	"testing"
)

func TestSecondsConversions(t *testing.T) {
	if Seconds(1.5) != 1_500_000_000 {
		t.Fatalf("Seconds(1.5) = %d", Seconds(1.5))
	}
	if SecondsOf(Seconds(0.25)) != 0.25 {
		t.Fatalf("round trip = %v", SecondsOf(Seconds(0.25)))
	}
	if SecondsAt(Time(2e9)) != 2.0 {
		t.Fatalf("SecondsAt = %v", SecondsAt(Time(2e9)))
	}
}

func TestSingleProcSleep(t *testing.T) {
	env := NewEnv()
	var done Time
	env.Spawn("p", func(p *Proc) {
		p.Sleep(Seconds(1))
		p.Sleep(Seconds(2))
		done = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if done != Time(Seconds(3)) {
		t.Fatalf("finished at %d, want 3s", done)
	}
}

func TestInterleavedProcsDeterministic(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var order []string
		env.Spawn("a", func(p *Proc) {
			p.Sleep(Seconds(2))
			order = append(order, "a2")
			p.Sleep(Seconds(2))
			order = append(order, "a4")
		})
		env.Spawn("b", func(p *Proc) {
			p.Sleep(Seconds(1))
			order = append(order, "b1")
			p.Sleep(Seconds(2))
			order = append(order, "b3")
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	want := []string{"b1", "a2", "b3", "a4"}
	for trial := 0; trial < 10; trial++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("order = %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order = %v, want %v", trial, got, want)
			}
		}
	}
}

func TestTieBreakBySpawnOrder(t *testing.T) {
	env := NewEnv()
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		env.Spawn(name, func(p *Proc) {
			p.Sleep(Seconds(1))
			order = append(order, name)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Fatalf("tie-break order = %v", order)
	}
}

func TestSignalBroadcast(t *testing.T) {
	env := NewEnv()
	var sig Signal
	var woke []Time
	for i := 0; i < 3; i++ {
		env.Spawn("w", func(p *Proc) {
			p.Await(&sig)
			woke = append(woke, env.Now())
		})
	}
	env.Spawn("firer", func(p *Proc) {
		p.Sleep(Seconds(5))
		sig.Fire(p)
		sig.Fire(p) // double fire is a no-op
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters", len(woke))
	}
	for _, w := range woke {
		if w != Time(Seconds(5)) {
			t.Fatalf("waiter woke at %d", w)
		}
	}
	if !sig.Fired() {
		t.Fatal("signal not marked fired")
	}
}

func TestAwaitAfterFireIsImmediate(t *testing.T) {
	env := NewEnv()
	var sig Signal
	var at Time
	env.Spawn("firer", func(p *Proc) {
		sig.Fire(p)
	})
	env.Spawn("late", func(p *Proc) {
		p.Sleep(Seconds(1))
		p.Await(&sig)
		at = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(Seconds(1)) {
		t.Fatalf("late waiter resumed at %d", at)
	}
}

func TestAwaitAll(t *testing.T) {
	env := NewEnv()
	var s1, s2 Signal
	var at Time
	env.Spawn("f1", func(p *Proc) { p.Sleep(Seconds(1)); s1.Fire(p) })
	env.Spawn("f2", func(p *Proc) { p.Sleep(Seconds(3)); s2.Fire(p) })
	env.Spawn("w", func(p *Proc) {
		p.AwaitAll(&s1, &s2)
		at = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(Seconds(3)) {
		t.Fatalf("AwaitAll finished at %d", at)
	}
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv()
	r := NewResource("dma", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		env.Spawn("t", func(p *Proc) {
			p.Use(r, "xfer", Seconds(2))
			ends = append(ends, env.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(Seconds(2)), Time(Seconds(4)), Time(Seconds(6))}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if r.Busy != Seconds(6) {
		t.Fatalf("Busy = %d, want 6s", r.Busy)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	env := NewEnv()
	r := NewResource("r", 1)
	var order []string
	// h holds the resource; a and b queue in spawn order.
	env.Spawn("h", func(p *Proc) {
		p.Acquire(r)
		p.Sleep(Seconds(1))
		p.Release(r)
	})
	for _, name := range []string{"a", "b"} {
		name := name
		env.Spawn(name, func(p *Proc) {
			p.Acquire(r)
			order = append(order, name)
			p.Sleep(Seconds(1))
			p.Release(r)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "a" || order[1] != "b" {
		t.Fatalf("FIFO order = %v", order)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	env := NewEnv()
	r := NewResource("r", 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		env.Spawn("t", func(p *Proc) {
			p.Use(r, "op", Seconds(1))
			ends = append(ends, env.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run in [0,1], two in [1,2].
	if ends[0] != Time(Seconds(1)) || ends[1] != Time(Seconds(1)) ||
		ends[2] != Time(Seconds(2)) || ends[3] != Time(Seconds(2)) {
		t.Fatalf("ends = %v", ends)
	}
}

func TestDeadlockDetection(t *testing.T) {
	env := NewEnv()
	var never Signal
	env.Spawn("stuck-waiter", func(p *Proc) {
		p.Await(&never)
	})
	err := env.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	// The report must name the stuck process and what it waits on.
	if !strings.Contains(err.Error(), "stuck-waiter") || !strings.Contains(err.Error(), "await signal") {
		t.Fatalf("undiagnostic deadlock error: %v", err)
	}
}

func TestTimelineSpansAndLaneBusy(t *testing.T) {
	env := NewEnv()
	env.Spawn("p", func(p *Proc) {
		p.Span("kernel", "k1", Seconds(2))
		p.Span("d2h", "t1", Seconds(3))
		p.Span("kernel", "k2", Seconds(1))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(env.Timeline) != 3 {
		t.Fatalf("timeline has %d spans", len(env.Timeline))
	}
	if env.LaneBusy("kernel") != Seconds(3) {
		t.Fatalf("kernel busy = %d", env.LaneBusy("kernel"))
	}
	if env.LaneBusy("d2h") != Seconds(3) {
		t.Fatalf("d2h busy = %d", env.LaneBusy("d2h"))
	}
	if env.LaneBusy("h2d") != 0 {
		t.Fatalf("h2d busy = %d", env.LaneBusy("h2d"))
	}
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnv()
	var childDone Time
	env.Spawn("parent", func(p *Proc) {
		p.Sleep(Seconds(1))
		env.Spawn("child", func(c *Proc) {
			c.Sleep(Seconds(2))
			childDone = env.Now()
		})
		p.Sleep(Seconds(5))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if childDone != Time(Seconds(3)) {
		t.Fatalf("child done at %d, want 3s", childDone)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	env := NewEnv()
	env.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for negative sleep")
			}
			// Recovered: let the process finish normally.
		}()
		p.Sleep(Duration(-1))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	env := NewEnv()
	r := NewResource("r", 1)
	env.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for release of idle resource")
			}
		}()
		p.Release(r)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
