// Package gpusim models a CUDA-class GPU attached to a host over PCIe,
// on top of the discrete-event kernel in internal/sim.
//
// The model captures exactly the constraints the paper's design works
// around (Section IV-B):
//
//   - PCIe has one DMA engine per direction, so at most one
//     host-to-device and one device-to-host transfer is in flight at a
//     time; further transfers in the same direction queue FIFO.
//   - Kernels execute one at a time on the compute engine (SpGEMM
//     kernels saturate the device, so concurrent kernels would not
//     help) and may overlap transfers in either direction.
//   - Device memory allocation serializes the whole device: a Malloc
//     waits for the compute engine and both DMA engines to drain and
//     holds them while it runs, reproducing CUDA's rule that commands
//     from different streams cannot run concurrently while the host
//     performs device memory (de)allocation.
//
// Durations come from a cost model in DeviceConfig; the actual SpGEMM
// arithmetic is executed as real Go code by the caller, so results are
// numerically correct while time is simulated.
package gpusim

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/sim"
)

// DeviceConfig describes the hardware being modeled plus the cost-model
// parameters used to convert work (flops, bytes) into simulated time.
type DeviceConfig struct {
	// Name identifies the device in traces.
	Name string
	// MemoryBytes is the device memory capacity; allocations beyond it
	// fail, which is what forces out-of-core execution.
	MemoryBytes int64
	// NumSMs, SharedMemPerSMBytes, RegistersPerSM, MaxThreadsPerBlock,
	// FP32Cores record the Table I specification for documentation and
	// for kernel-configuration heuristics.
	NumSMs              int
	SharedMemPerSMBytes int
	RegistersPerSM      int
	MaxThreadsPerBlock  int
	FP32Cores           int

	// H2DBandwidth and D2HBandwidth are effective PCIe bandwidths in
	// bytes/second (one DMA engine each).
	H2DBandwidth float64
	D2HBandwidth float64
	// TransferLatency is the fixed per-transfer setup cost in seconds.
	TransferLatency float64
	// KernelLaunch is the fixed per-kernel launch cost in seconds.
	KernelLaunch float64
	// HashRate and DenseRate are effective SpGEMM numeric-phase
	// throughputs in flops/second for hash-accumulator kernels (sparse
	// output rows) and dense-accumulator kernels (dense output rows).
	HashRate  float64
	DenseRate float64
	// SymbolicFactor scales numeric-kernel cost to symbolic-kernel cost
	// (the symbolic phase touches the same data but writes no values).
	SymbolicFactor float64
	// AnalysisFactor scales numeric-kernel cost to row-analysis cost
	// (the paper notes row analysis is very small next to other phases).
	AnalysisFactor float64
	// MallocLatency is the device-wide stall per Malloc/Free, seconds.
	MallocLatency float64
	// PageableHostMemory disables pinned host buffers: every DMA
	// transfer pays PageablePenalty (the driver must stage pages
	// through a pinned bounce buffer). The paper transfers to "CPU
	// pinned memory", the default here.
	PageableHostMemory bool
	// PageablePenalty is the transfer-time factor when
	// PageableHostMemory is set; zero means 1.8.
	PageablePenalty float64

	// UMPageBytes, UMFaultLatency and UMBandwidth parameterize the
	// unified-memory mode used by the motivation ablation: transfers
	// happen page by page on demand, paying a fault latency per page.
	UMPageBytes    int64
	UMFaultLatency float64
	UMBandwidth    float64
}

// V100Config returns the Tesla V100 specification of the paper's
// Table I together with cost-model parameters calibrated so the
// reproduction lands in the paper's measured bands (see DESIGN.md §4).
func V100Config() DeviceConfig {
	return DeviceConfig{
		Name:                "Tesla V100 (simulated)",
		MemoryBytes:         16 << 30,
		NumSMs:              80,
		SharedMemPerSMBytes: 96 << 10,
		RegistersPerSM:      65536,
		MaxThreadsPerBlock:  1024,
		FP32Cores:           5120,

		// Fixed per-operation overheads are scaled down ~1000x along
		// with the evaluation suite (DESIGN.md §1), so they keep the
		// same share of the runtime they had at paper scale.
		H2DBandwidth:    12.0e9,
		D2HBandwidth:    3.0e9,
		TransferLatency: 1e-6,
		KernelLaunch:    0.5e-6,
		HashRate:        13e9,
		DenseRate:       50e9,
		SymbolicFactor:  0.35,
		AnalysisFactor:  0.03,
		MallocLatency:   2e-6,

		UMPageBytes:    64 << 10,
		UMFaultLatency: 25e-6,
		UMBandwidth:    2.2e9,
	}
}

// ScaledV100Config returns the V100 model with device memory replaced
// by memoryBytes. The evaluation suite is about 1000x smaller than the
// paper's matrices, so experiments scale the 16 GB capacity down to
// keep the inputs genuinely out-of-core.
func ScaledV100Config(memoryBytes int64) DeviceConfig {
	cfg := V100Config()
	cfg.MemoryBytes = memoryBytes
	cfg.Name = fmt.Sprintf("Tesla V100 (simulated, %d MiB)", memoryBytes>>20)
	return cfg
}

// Device is a simulated GPU.
type Device struct {
	Cfg DeviceConfig
	Env *sim.Env

	// Compute is the kernel-execution engine; H2D and D2H are the two
	// DMA engines. All are capacity-1 FIFO resources.
	Compute, H2D, D2H *sim.Resource

	memUsed int64
	memPeak int64
	// mallocs counts Malloc calls, a cheap proxy used by tests and by
	// the dynamic-vs-preallocated comparison.
	mallocs int
	// bytesH2D and bytesD2H accumulate the payload bytes moved over
	// each DMA engine (including unified-memory migrations), the
	// "bytes moved" counters of the observability layer.
	bytesH2D, bytesD2H int64

	// faults is the optional fault injector; nil (the default) is the
	// fault-free device, and every consultation below is a single
	// nil-receiver check on that path.
	faults *faults.Injector
}

// NewDevice creates a device within the environment.
func NewDevice(env *sim.Env, cfg DeviceConfig) *Device {
	return &Device{
		Cfg:     cfg,
		Env:     env,
		Compute: sim.NewResource("kernel", 1),
		H2D:     sim.NewResource("h2d", 1),
		D2H:     sim.NewResource("d2h", 1),
	}
}

// MemUsed reports current device memory in use.
func (d *Device) MemUsed() int64 { return d.memUsed }

// MemPeak reports the high-water mark of device memory use.
func (d *Device) MemPeak() int64 { return d.memPeak }

// Mallocs reports how many device allocations have been performed.
func (d *Device) Mallocs() int { return d.mallocs }

// BytesH2D reports the total payload bytes moved host-to-device.
func (d *Device) BytesH2D() int64 { return d.bytesH2D }

// BytesD2H reports the total payload bytes moved device-to-host.
func (d *Device) BytesD2H() int64 { return d.bytesD2H }

// SetFaults attaches a fault injector; nil detaches it.
func (d *Device) SetFaults(inj *faults.Injector) { d.faults = inj }

// Faults returns the attached injector (nil when fault-free).
func (d *Device) Faults() *faults.Injector { return d.faults }

// UsableBytes is the device capacity available to allocations:
// MemoryBytes minus whatever the injector's OOM pressure withholds.
// Fault-free it equals Cfg.MemoryBytes exactly.
func (d *Device) UsableBytes() int64 {
	return d.Cfg.MemoryBytes - d.faults.Shrink(d.Cfg.MemoryBytes)
}

// transferTime converts a byte count to seconds on a DMA engine,
// scaled by an injected straggler slowdown (1 when healthy).
func (d *Device) transferTime(bytes int64, bw, slowdown float64) sim.Duration {
	secs := d.Cfg.TransferLatency + float64(bytes)/bw
	if d.Cfg.PageableHostMemory {
		penalty := d.Cfg.PageablePenalty
		if penalty == 0 {
			penalty = 1.8
		}
		secs *= penalty
	}
	return sim.Seconds(secs * slowdown)
}

// TransferH2D moves bytes from host to device, occupying the H2D
// engine. Under fault injection it may fail transiently (the failed
// attempt consumes no engine time or byte accounting — the retry
// layer's backoff supplies the lost time) or run slow; errors wrap
// faults.ErrTransfer or faults.ErrDeviceLost.
func (d *Device) TransferH2D(p *sim.Proc, label string, bytes int64) error {
	slow, err := d.faults.Transfer()
	if err != nil {
		return fmt.Errorf("gpusim: h2d %s (%d bytes): %w", label, bytes, err)
	}
	d.bytesH2D += bytes
	p.Use(d.H2D, label, d.transferTime(bytes, d.Cfg.H2DBandwidth, slow))
	return nil
}

// TransferD2H moves bytes from device to host, occupying the D2H
// engine; fault semantics as TransferH2D.
func (d *Device) TransferD2H(p *sim.Proc, label string, bytes int64) error {
	slow, err := d.faults.Transfer()
	if err != nil {
		return fmt.Errorf("gpusim: d2h %s (%d bytes): %w", label, bytes, err)
	}
	d.bytesD2H += bytes
	p.Use(d.D2H, label, d.transferTime(bytes, d.Cfg.D2HBandwidth, slow))
	return nil
}

// Kernel runs a kernel of the given duration on the compute engine.
// Under fault injection it may fail transiently (wrapping
// faults.ErrKernel) or stretch by a straggler factor.
func (d *Device) Kernel(p *sim.Proc, label string, seconds float64) error {
	slow, err := d.faults.Kernel()
	if err != nil {
		return fmt.Errorf("gpusim: kernel %s: %w", label, err)
	}
	p.Use(d.Compute, label, sim.Seconds(seconds*slow+d.Cfg.KernelLaunch))
	return nil
}

// Alloc is a device memory allocation.
type Alloc struct {
	// Bytes is the allocation size.
	Bytes int64
	freed bool
}

// Malloc allocates device memory. Per CUDA semantics it is a
// device-wide barrier: it drains and holds the compute engine and both
// DMA engines for the allocation latency, which is precisely why the
// paper's asynchronous design pre-allocates everything. Exhausting the
// usable capacity returns an error wrapping faults.ErrOOM; a lost
// device returns faults.ErrDeviceLost.
func (d *Device) Malloc(p *sim.Proc, label string, bytes int64) (*Alloc, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("gpusim: negative allocation %d", bytes)
	}
	if err := d.faults.Alloc(); err != nil {
		return nil, fmt.Errorf("gpusim: malloc %s: %w", label, err)
	}
	if usable := d.UsableBytes(); d.memUsed+bytes > usable {
		return nil, fmt.Errorf("gpusim: %d used + %d requested > %d usable: %w",
			d.memUsed, bytes, usable, faults.ErrOOM)
	}
	d.barrier(p, "malloc "+label)
	d.memUsed += bytes
	if d.memUsed > d.memPeak {
		d.memPeak = d.memUsed
	}
	d.mallocs++
	return &Alloc{Bytes: bytes}, nil
}

// Free releases an allocation, also stalling the device like Malloc.
// Releasing the same allocation twice is reported as an error (a
// caller bug in real CUDA, but one the engines must surface rather
// than crash the library on).
func (d *Device) Free(p *sim.Proc, a *Alloc) error {
	if a.freed {
		return fmt.Errorf("gpusim: double free of %d-byte allocation", a.Bytes)
	}
	a.freed = true
	d.barrier(p, "free")
	d.memUsed -= a.Bytes
	return nil
}

// FreeAccounting releases an allocation's memory accounting without a
// device call: no barrier, no virtual time, callable after the
// simulation has drained. It models destroying the device context at
// end of run — the engines use it to tear down allocations still
// resident when a run ends (normally or by deadline/abandonment), so
// end-of-run memory audits see zero bytes in use. Double frees are
// reported like Free.
func (d *Device) FreeAccounting(a *Alloc) error {
	if a.freed {
		return fmt.Errorf("gpusim: double free of %d-byte allocation", a.Bytes)
	}
	a.freed = true
	d.memUsed -= a.Bytes
	return nil
}

// barrier acquires every engine in a fixed order, holds them for the
// allocation latency, and releases them: nothing overlaps a malloc.
func (d *Device) barrier(p *sim.Proc, label string) {
	p.Acquire(d.Compute)
	p.Acquire(d.H2D)
	p.Acquire(d.D2H)
	p.Span("barrier", label, sim.Seconds(d.Cfg.MallocLatency))
	p.Release(d.D2H)
	p.Release(d.H2D)
	p.Release(d.Compute)
}

// Reserve adjusts memory accounting without a device stall, for
// pre-allocated arenas that suballocate by offset (Section IV-B's
// "doing our own memory management").
func (d *Device) Reserve(bytes int64) error {
	if usable := d.UsableBytes(); d.memUsed+bytes > usable {
		return fmt.Errorf("gpusim: %d used + %d requested > %d usable: %w",
			d.memUsed, bytes, usable, faults.ErrOOM)
	}
	d.memUsed += bytes
	if d.memUsed > d.memPeak {
		d.memPeak = d.memUsed
	}
	return nil
}

// Unreserve returns memory accounted via Reserve. Returning more than
// is reserved is an accounting bug in the caller; it is reported
// rather than silently driving memUsed negative.
func (d *Device) Unreserve(bytes int64) error {
	if bytes > d.memUsed {
		return fmt.Errorf("gpusim: unreserve of %d bytes exceeds %d in use", bytes, d.memUsed)
	}
	d.memUsed -= bytes
	return nil
}

// UMRead models a unified-memory read of bytes resident on the host:
// the data migrates page by page over the H2D engine, paying a fault
// latency per page and the (lower) UM bandwidth.
func (d *Device) UMRead(p *sim.Proc, label string, bytes int64) {
	pages := (bytes + d.Cfg.UMPageBytes - 1) / d.Cfg.UMPageBytes
	secs := float64(pages)*d.Cfg.UMFaultLatency + float64(bytes)/d.Cfg.UMBandwidth
	d.bytesH2D += bytes
	p.Use(d.H2D, "um "+label, sim.Seconds(secs))
}

// UMWrite models unified-memory write-back of device-produced data to
// host pages over the D2H engine.
func (d *Device) UMWrite(p *sim.Proc, label string, bytes int64) {
	pages := (bytes + d.Cfg.UMPageBytes - 1) / d.Cfg.UMPageBytes
	secs := float64(pages)*d.Cfg.UMFaultLatency + float64(bytes)/d.Cfg.UMBandwidth
	d.bytesD2H += bytes
	p.Use(d.D2H, "um "+label, sim.Seconds(secs))
}

// TransferBusy reports the total simulated time spent moving data over
// either DMA engine, the numerator of the paper's Figure 4. It is
// computed from the traced transfer spans, so device-wide malloc
// barriers (which hold the engines without transferring) don't count.
func (d *Device) TransferBusy() sim.Duration {
	return d.Env.LaneBusy("h2d") + d.Env.LaneBusy("d2h")
}

// ComputeBusy reports the total simulated time spent executing kernels.
func (d *Device) ComputeBusy() sim.Duration {
	return d.Env.LaneBusy("kernel")
}
