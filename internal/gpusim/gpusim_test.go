package gpusim

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func testConfig() DeviceConfig {
	cfg := V100Config()
	cfg.MemoryBytes = 1 << 20
	// Simple round numbers for arithmetic checks.
	cfg.H2DBandwidth = 1e9
	cfg.D2HBandwidth = 1e9
	cfg.TransferLatency = 0
	cfg.KernelLaunch = 0
	cfg.MallocLatency = 1e-3
	return cfg
}

func TestV100ConfigTable1(t *testing.T) {
	cfg := V100Config()
	if cfg.NumSMs != 80 || cfg.MemoryBytes != 16<<30 || cfg.FP32Cores != 5120 ||
		cfg.MaxThreadsPerBlock != 1024 || cfg.RegistersPerSM != 65536 {
		t.Fatalf("V100Config does not match Table I: %+v", cfg)
	}
}

func TestScaledV100Config(t *testing.T) {
	cfg := ScaledV100Config(32 << 20)
	if cfg.MemoryBytes != 32<<20 {
		t.Fatalf("scaled memory = %d", cfg.MemoryBytes)
	}
	if cfg.NumSMs != 80 {
		t.Fatal("scaling must not alter the compute model")
	}
	if !strings.Contains(cfg.Name, "32 MiB") {
		t.Fatalf("name = %q", cfg.Name)
	}
}

func TestTransferDurationAndSerialization(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	var end1, end2, endH2D sim.Time
	env.Spawn("a", func(p *sim.Proc) {
		dev.TransferD2H(p, "c0", 2e9) // 2 s at 1 GB/s
		end1 = env.Now()
	})
	env.Spawn("b", func(p *sim.Proc) {
		dev.TransferD2H(p, "c1", 1e9) // queues behind a
		end2 = env.Now()
	})
	env.Spawn("c", func(p *sim.Proc) {
		dev.TransferH2D(p, "in", 1e9) // opposite direction: overlaps
		endH2D = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if end1 != sim.Time(sim.Seconds(2)) {
		t.Fatalf("first D2H ended at %v", end1)
	}
	if end2 != sim.Time(sim.Seconds(3)) {
		t.Fatalf("second D2H ended at %v (must serialize)", end2)
	}
	if endH2D != sim.Time(sim.Seconds(1)) {
		t.Fatalf("H2D ended at %v (must overlap D2H)", endH2D)
	}
	if dev.TransferBusy() != sim.Seconds(4) {
		t.Fatalf("TransferBusy = %v", dev.TransferBusy())
	}
}

func TestKernelOverlapsTransfers(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	var kEnd, tEnd sim.Time
	env.Spawn("k", func(p *sim.Proc) {
		dev.Kernel(p, "numeric", 3)
		kEnd = env.Now()
	})
	env.Spawn("t", func(p *sim.Proc) {
		dev.TransferD2H(p, "out", 2e9)
		tEnd = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if kEnd != sim.Time(sim.Seconds(3)) || tEnd != sim.Time(sim.Seconds(2)) {
		t.Fatalf("kernel end %v, transfer end %v: should fully overlap", kEnd, tEnd)
	}
}

func TestMallocIsDeviceWideBarrier(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	var kernel2Start sim.Time
	// Timeline: kernel [0,1]; malloc issued at t=0 must wait for the
	// kernel, then stall 1 ms; a transfer issued at t=0 on the *other*
	// engine must not start until the malloc completes if it arrives
	// after the malloc queued... here we check the second kernel.
	env.Spawn("k1", func(p *sim.Proc) {
		dev.Kernel(p, "k1", 1)
	})
	env.Spawn("m", func(p *sim.Proc) {
		p.Sleep(sim.Seconds(0.5)) // issue mid-kernel
		if _, err := dev.Malloc(p, "buf", 1024); err != nil {
			t.Errorf("Malloc: %v", err)
		}
	})
	env.Spawn("k2", func(p *sim.Proc) {
		p.Sleep(sim.Seconds(0.6)) // issued while malloc is queued
		dev.Kernel(p, "k2", 1)
		kernel2Start = env.Now() - sim.Time(sim.Seconds(1))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// k2 must start only after the malloc finishes at 1.001 s.
	if got, want := kernel2Start, sim.Time(sim.Seconds(1.001)); got != want {
		t.Fatalf("second kernel started at %v, want %v", got, want)
	}
}

func TestMallocAccountingAndOOM(t *testing.T) {
	env := sim.NewEnv()
	cfg := testConfig()
	cfg.MemoryBytes = 1000
	dev := NewDevice(env, cfg)
	env.Spawn("p", func(p *sim.Proc) {
		a, err := dev.Malloc(p, "a", 600)
		if err != nil {
			t.Errorf("first Malloc: %v", err)
			return
		}
		if _, err := dev.Malloc(p, "b", 600); err == nil {
			t.Error("expected OOM")
		}
		if dev.MemUsed() != 600 {
			t.Errorf("MemUsed = %d", dev.MemUsed())
		}
		dev.Free(p, a)
		if dev.MemUsed() != 0 {
			t.Errorf("MemUsed after free = %d", dev.MemUsed())
		}
		if dev.MemPeak() != 600 {
			t.Errorf("MemPeak = %d", dev.MemPeak())
		}
		if dev.Mallocs() != 1 {
			t.Errorf("Mallocs = %d", dev.Mallocs())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreeError(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	env.Spawn("p", func(p *sim.Proc) {
		a, err := dev.Malloc(p, "a", 16)
		if err != nil {
			t.Errorf("Malloc: %v", err)
			return
		}
		if err := dev.Free(p, a); err != nil {
			t.Errorf("first Free: %v", err)
		}
		if err := dev.Free(p, a); err == nil {
			t.Error("expected error on double free")
		}
		if dev.MemUsed() != 0 {
			t.Errorf("MemUsed after double free = %d (must not go negative)", dev.MemUsed())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveUnreserve(t *testing.T) {
	env := sim.NewEnv()
	cfg := testConfig()
	cfg.MemoryBytes = 100
	dev := NewDevice(env, cfg)
	if err := dev.Reserve(80); err != nil {
		t.Fatal(err)
	}
	if err := dev.Reserve(30); err == nil {
		t.Fatal("expected reserve OOM")
	}
	if err := dev.Unreserve(80); err != nil {
		t.Fatal(err)
	}
	if dev.MemUsed() != 0 {
		t.Fatalf("MemUsed = %d", dev.MemUsed())
	}
	if dev.MemPeak() != 80 {
		t.Fatalf("MemPeak = %d", dev.MemPeak())
	}
}

// TestUnreserveUnderflowGuard checks that unbalanced Unreserve calls
// are rejected instead of driving memUsed negative, and that Reserve
// and Unreserve stay paired through a mixed sequence.
func TestUnreserveUnderflowGuard(t *testing.T) {
	env := sim.NewEnv()
	cfg := testConfig()
	cfg.MemoryBytes = 100
	dev := NewDevice(env, cfg)
	if err := dev.Unreserve(1); err == nil {
		t.Fatal("expected error for unreserve with nothing in use")
	}
	// A paired sequence of reserves and unreserves must balance to 0
	// and every unbalanced step must be rejected with state unchanged.
	steps := []struct {
		reserve bool
		bytes   int64
		wantErr bool
	}{
		{true, 40, false},
		{true, 50, false},
		{false, 100, true}, // exceeds the 90 in use
		{false, 50, false},
		{false, 41, true}, // exceeds the 40 in use
		{false, 40, false},
	}
	for i, s := range steps {
		var err error
		if s.reserve {
			err = dev.Reserve(s.bytes)
		} else {
			err = dev.Unreserve(s.bytes)
		}
		if (err != nil) != s.wantErr {
			t.Fatalf("step %d: err = %v, wantErr = %v", i, err, s.wantErr)
		}
	}
	if dev.MemUsed() != 0 {
		t.Fatalf("MemUsed after balanced sequence = %d", dev.MemUsed())
	}
}

func TestUnifiedMemoryCost(t *testing.T) {
	env := sim.NewEnv()
	cfg := testConfig()
	cfg.UMPageBytes = 1000
	cfg.UMFaultLatency = 0.5
	cfg.UMBandwidth = 1000 // 1 KB/s: 2000 bytes = 2 s + 2 faults*0.5
	dev := NewDevice(env, cfg)
	var end sim.Time
	env.Spawn("p", func(p *sim.Proc) {
		dev.UMRead(p, "input", 2000)
		end = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if end != sim.Time(sim.Seconds(3)) {
		t.Fatalf("UM read ended at %v, want 3 s", end)
	}
}

func TestStreamOrdering(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	s := dev.NewStream("s0")
	var order []string
	env.Spawn("host", func(p *sim.Proc) {
		s.Enqueue("k1", func(q *sim.Proc) {
			dev.Kernel(q, "k1", 2)
			order = append(order, "k1")
		})
		done := s.Enqueue("k2", func(q *sim.Proc) {
			dev.Kernel(q, "k2", 1)
			order = append(order, "k2")
		})
		p.Await(done)
		order = append(order, "host")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "k1" || order[1] != "k2" || order[2] != "host" {
		t.Fatalf("order = %v", order)
	}
	if env.Now() != sim.Time(sim.Seconds(3)) {
		t.Fatalf("finished at %v", env.Now())
	}
}

func TestTwoStreamsOverlapComputeAndTransfer(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	s1 := dev.NewStream("s1")
	s2 := dev.NewStream("s2")
	env.Spawn("host", func(p *sim.Proc) {
		d1 := s1.Enqueue("kernel", func(q *sim.Proc) { dev.Kernel(q, "k", 2) })
		d2 := s2.Enqueue("xfer", func(q *sim.Proc) { dev.TransferD2H(q, "c", 2e9) })
		p.AwaitAll(d1, d2)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != sim.Time(sim.Seconds(2)) {
		t.Fatalf("finished at %v: streams did not overlap", env.Now())
	}
}

func TestStreamSync(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	s := dev.NewStream("s")
	var syncAt sim.Time
	env.Spawn("host", func(p *sim.Proc) {
		s.Enqueue("k", func(q *sim.Proc) { dev.Kernel(q, "k", 5) })
		s.Sync(p)
		syncAt = env.Now()
		// Sync on an idle stream returns immediately.
		s.Sync(p)
		if env.Now() != syncAt {
			t.Error("Sync on idle stream advanced time")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if syncAt != sim.Time(sim.Seconds(5)) {
		t.Fatalf("Sync returned at %v", syncAt)
	}
}

func TestStreamReusableAfterDrain(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	s := dev.NewStream("s")
	var count int
	env.Spawn("host", func(p *sim.Proc) {
		d1 := s.Enqueue("k1", func(q *sim.Proc) { dev.Kernel(q, "k1", 1); count++ })
		p.Await(d1)
		// Stream worker has exited; enqueueing again must restart it.
		d2 := s.Enqueue("k2", func(q *sim.Proc) { dev.Kernel(q, "k2", 1); count++ })
		p.Await(d2)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("ran %d ops", count)
	}
}

func TestNegativeMalloc(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	env.Spawn("p", func(p *sim.Proc) {
		if _, err := dev.Malloc(p, "neg", -1); err == nil {
			t.Error("expected error for negative allocation")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPageableHostMemoryPenalty(t *testing.T) {
	env := sim.NewEnv()
	cfg := testConfig()
	cfg.PageableHostMemory = true
	cfg.PageablePenalty = 2.0
	dev := NewDevice(env, cfg)
	var end sim.Time
	env.Spawn("p", func(p *sim.Proc) {
		dev.TransferD2H(p, "c", 1e9) // 1s at 1 GB/s, doubled by penalty
		end = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if end != sim.Time(sim.Seconds(2)) {
		t.Fatalf("pageable transfer ended at %v, want 2s", end)
	}
}
