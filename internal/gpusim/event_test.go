package gpusim

import (
	"testing"

	"repro/internal/sim"
)

func TestEventRecordAndElapsed(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	s := dev.NewStream("s")
	start := dev.NewEvent("start")
	end := dev.NewEvent("end")
	env.Spawn("host", func(p *sim.Proc) {
		start.Record(s)
		s.Enqueue("k", func(q *sim.Proc) { dev.Kernel(q, "k", 3) })
		end.Record(s)
		end.Synchronize(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !start.Occurred() || !end.Occurred() {
		t.Fatal("events did not occur")
	}
	if got := Elapsed(start, end); got != sim.Seconds(3) {
		t.Fatalf("Elapsed = %v, want 3s", got)
	}
	if start.Name() != "start" {
		t.Fatal("Name wrong")
	}
}

func TestEventSynchronizeBlocksUntilStreamDrains(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	s := dev.NewStream("s")
	ev := dev.NewEvent("after-kernel")
	var syncAt sim.Time
	env.Spawn("host", func(p *sim.Proc) {
		s.Enqueue("k", func(q *sim.Proc) { dev.Kernel(q, "k", 5) })
		ev.Record(s)
		ev.Synchronize(p)
		syncAt = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if syncAt != sim.Time(sim.Seconds(5)) {
		t.Fatalf("Synchronize returned at %v, want 5s", syncAt)
	}
	if ev.Time() != sim.Time(sim.Seconds(5)) {
		t.Fatalf("event occurred at %v", ev.Time())
	}
}

func TestStreamWaitEventCrossStream(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	s1 := dev.NewStream("s1")
	s2 := dev.NewStream("s2")
	ev := dev.NewEvent("s1-done")
	var xferEnd sim.Time
	env.Spawn("host", func(p *sim.Proc) {
		s1.Enqueue("k", func(q *sim.Proc) { dev.Kernel(q, "k", 4) })
		ev.Record(s1)
		// s2's transfer must not start before s1's kernel finished,
		// even though both engines are free.
		dev.StreamWaitEvent(s2, ev)
		done := s2.Enqueue("xfer", func(q *sim.Proc) {
			dev.TransferD2H(q, "c", 1e9) // 1s at 1 GB/s
			xferEnd = env.Now()
		})
		p.Await(done)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if xferEnd != sim.Time(sim.Seconds(5)) {
		t.Fatalf("transfer ended at %v, want 5s (4s kernel + 1s transfer)", xferEnd)
	}
}

func TestElapsedPanicsOnUnrecorded(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	e1 := dev.NewEvent("a")
	e2 := dev.NewEvent("b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Elapsed(e1, e2)
}
