package gpusim

import "repro/internal/sim"

// Stream is a CUDA-style in-order operation queue. Operations enqueued
// on one stream execute in FIFO order; operations on different streams
// may overlap, subject to the device's engine and malloc constraints.
//
// Enqueue may be called from any simulation process; it returns a
// completion signal immediately. A dedicated worker process drains the
// queue and exits when the queue is empty, so streams need no explicit
// shutdown.
type Stream struct {
	dev     *Device
	name    string
	queue   []streamOp
	running bool
}

type streamOp struct {
	label string
	fn    func(p *sim.Proc)
	done  *sim.Signal
}

// NewStream creates a stream on the device.
func (d *Device) NewStream(name string) *Stream {
	return &Stream{dev: d, name: name}
}

// Name returns the stream name.
func (s *Stream) Name() string { return s.name }

// Enqueue appends an operation and returns its completion signal. The
// operation function runs in the stream's worker process and may use
// any Device method.
func (s *Stream) Enqueue(label string, fn func(p *sim.Proc)) *sim.Signal {
	op := streamOp{label: label, fn: fn, done: &sim.Signal{}}
	s.queue = append(s.queue, op)
	if !s.running {
		s.running = true
		s.dev.Env.Spawn("stream:"+s.name, s.drain)
	}
	return op.done
}

// drain executes queued operations in order until the queue is empty.
func (s *Stream) drain(p *sim.Proc) {
	for len(s.queue) > 0 {
		op := s.queue[0]
		s.queue = s.queue[1:]
		op.fn(p)
		op.done.Fire(p)
	}
	s.running = false
}

// Sync blocks the calling process until every operation enqueued so
// far has completed.
func (s *Stream) Sync(p *sim.Proc) {
	var last *sim.Signal
	if n := len(s.queue); n > 0 {
		last = s.queue[n-1].done
	}
	if last == nil {
		if !s.running {
			return
		}
		// Operations may be mid-flight with an empty queue; enqueue a
		// no-op marker and wait for it.
		last = s.Enqueue("sync", func(*sim.Proc) {})
	}
	p.Await(last)
}
