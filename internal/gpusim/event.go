package gpusim

import "repro/internal/sim"

// Event is a CUDA-style timing/synchronization event. Record enqueues
// the event on a stream: it "occurs" when every operation enqueued on
// that stream before it has completed. Elapsed between two occurred
// events gives device-side timing, the way CUDA code brackets kernels
// with cudaEventRecord/cudaEventElapsedTime.
type Event struct {
	name string
	done *sim.Signal
	at   sim.Time
}

// NewEvent creates an unrecorded event.
func (d *Device) NewEvent(name string) *Event {
	return &Event{name: name, done: &sim.Signal{}}
}

// Name returns the event name.
func (e *Event) Name() string { return e.name }

// Occurred reports whether the event has completed.
func (e *Event) Occurred() bool { return e.done.Fired() }

// Time returns the virtual time the event occurred (zero if not yet).
func (e *Event) Time() sim.Time { return e.at }

// Record enqueues the event on the stream. Like cudaEventRecord, it
// returns immediately; the event occurs when the stream drains past it.
func (e *Event) Record(s *Stream) {
	sig := s.Enqueue("event "+e.name, func(p *sim.Proc) {
		e.at = p.Env().Now()
	})
	// Chain the stream op's completion into the event's signal via a
	// watcher process (signals are one-shot; the event may be awaited
	// before or after it occurs).
	s.dev.Env.Spawn("event:"+e.name, func(p *sim.Proc) {
		p.Await(sig)
		e.done.Fire(p)
	})
}

// Synchronize blocks the calling process until the event occurs
// (cudaEventSynchronize).
func (e *Event) Synchronize(p *sim.Proc) {
	p.Await(e.done)
}

// Elapsed returns the virtual duration between two occurred events
// (cudaEventElapsedTime). It panics if either has not occurred.
func Elapsed(start, end *Event) sim.Duration {
	if !start.Occurred() || !end.Occurred() {
		panic("gpusim: Elapsed on unrecorded event")
	}
	return sim.Duration(end.at - start.at)
}

// StreamWaitEvent makes subsequent operations on the stream wait for
// the event (cudaStreamWaitEvent): cross-stream dependencies without
// host involvement.
func (d *Device) StreamWaitEvent(s *Stream, e *Event) {
	s.Enqueue("wait "+e.name, func(p *sim.Proc) {
		p.Await(e.done)
	})
}
