package gpusim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

// nearOne is a failure/straggler rate that every uniform draw
// satisfies in practice while staying inside Config's [0,1) domain.
const nearOne = 0.999999

// TestFailedTransferConsumesNothing: an injected transfer fault must
// cost neither simulated time nor accounted bytes — the operation
// never reached the DMA engine.
func TestFailedTransferConsumesNothing(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	dev.SetFaults(faults.New(faults.Config{Seed: 1, TransferRate: nearOne, MaxFaults: 1}))
	env.Spawn("p", func(p *sim.Proc) {
		if err := dev.TransferH2D(p, "a", 1e9); !errors.Is(err, faults.ErrTransfer) {
			t.Errorf("TransferH2D err = %v, want ErrTransfer", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 0 {
		t.Errorf("failed transfer advanced the clock to %v", env.Now())
	}
	if dev.BytesH2D() != 0 {
		t.Errorf("failed transfer accounted %d bytes", dev.BytesH2D())
	}
	if dev.Faults().Injected() != 1 {
		t.Errorf("Injected = %d, want 1", dev.Faults().Injected())
	}
}

// TestDeviceFaultSequenceDeterministic: two devices with the same
// fault seed running the same op sequence must fail at the same ops
// and finish at the same simulated times.
func TestDeviceFaultSequenceDeterministic(t *testing.T) {
	run := func() (trace []string, end sim.Time) {
		env := sim.NewEnv()
		dev := NewDevice(env, testConfig())
		dev.SetFaults(faults.New(faults.Config{Seed: 42, TransferRate: 0.3, KernelRate: 0.3}))
		env.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < 30; i++ {
				var err error
				if i%2 == 0 {
					err = dev.TransferH2D(p, "x", 1e6)
				} else {
					err = dev.Kernel(p, "k", 1e-3)
				}
				trace = append(trace, fmt.Sprintf("%d:%v", i, err))
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return trace, env.Now()
	}
	t1, e1 := run()
	t2, e2 := run()
	if e1 != e2 {
		t.Fatalf("end times differ: %v vs %v", e1, e2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("op %d diverged: %q vs %q", i, t1[i], t2[i])
		}
	}
}

// TestUsableBytesShrink: OOM pressure withholds a fraction of device
// memory from Malloc and Reserve without touching accounting.
func TestUsableBytesShrink(t *testing.T) {
	env := sim.NewEnv()
	cfg := testConfig()
	cfg.MemoryBytes = 1000
	dev := NewDevice(env, cfg)
	dev.SetFaults(faults.New(faults.Config{Seed: 1, OOMShrink: 0.25}))
	if got := dev.UsableBytes(); got != 750 {
		t.Fatalf("UsableBytes = %d, want 750", got)
	}
	env.Spawn("p", func(p *sim.Proc) {
		if _, err := dev.Malloc(p, "big", 800); !errors.Is(err, faults.ErrOOM) {
			t.Errorf("Malloc 800 err = %v, want ErrOOM", err)
		}
		a, err := dev.Malloc(p, "fits", 700)
		if err != nil {
			t.Errorf("Malloc 700: %v", err)
			return
		}
		if err := dev.Free(p, a); err != nil {
			t.Errorf("Free: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestLossAfterOpsKillsDevice: past the op budget every device call
// reports ErrDeviceLost and the injector reports the device lost.
func TestLossAfterOpsKillsDevice(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig())
	dev.SetFaults(faults.New(faults.Config{Seed: 1, LossAfterOps: 3}))
	env.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			err := dev.Kernel(p, "k", 1e-3)
			if i < 2 && err != nil {
				t.Errorf("op %d: unexpected error %v", i, err)
			}
			if i >= 2 && !errors.Is(err, faults.ErrDeviceLost) {
				t.Errorf("op %d: err = %v, want ErrDeviceLost", i, err)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !dev.Faults().Lost() {
		t.Error("device not marked lost")
	}
}

// TestStragglerSlowsTransfer: a straggler draw multiplies the
// operation's duration without failing it.
func TestStragglerSlowsTransfer(t *testing.T) {
	env := sim.NewEnv()
	dev := NewDevice(env, testConfig()) // 1 GB/s H2D
	dev.SetFaults(faults.New(faults.Config{Seed: 1, StragglerRate: nearOne, StragglerFactor: 3}))
	var end sim.Time
	env.Spawn("p", func(p *sim.Proc) {
		if err := dev.TransferH2D(p, "a", 1e9); err != nil {
			t.Errorf("TransferH2D: %v", err)
		}
		end = env.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(sim.Seconds(3)); end != want {
		t.Fatalf("straggler transfer ended at %v, want %v", end, want)
	}
	if dev.Faults().Counts()["straggler"] != 1 {
		t.Fatalf("straggler count = %v", dev.Faults().Counts())
	}
}
