package repro

import (
	"path/filepath"
	"testing"

	"repro/spgemm"
	"repro/spgemm/amg"
	"repro/spgemm/graph"
)

// TestEndToEndFileWorkflow exercises the full user workflow: generate
// a matrix, write it to disk, read it back, multiply it out-of-core,
// write the product, read the product, and verify everything against
// the CPU engine — the library-level equivalent of
//
//	matgen -gen=rmat -o=a.mtx
//	spgemm-run -a=a.mtx -engine=gpu -o=c.mtx
func TestEndToEndFileWorkflow(t *testing.T) {
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.mtx.gz")
	cPath := filepath.Join(dir, "c.mtx.gz")

	a := spgemm.RMAT(10, 8, 0.57, 0.19, 0.19, 81)
	if err := spgemm.WriteMatrixMarket(aPath, a); err != nil {
		t.Fatal(err)
	}
	loaded, err := spgemm.ReadMatrixMarket(aPath)
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.Equal(a, loaded, 0) {
		t.Fatal("matrix changed on disk round trip")
	}

	cfg := spgemm.V100WithMemory(8 << 20)
	opts, err := spgemm.Plan(loaded, loaded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, stats, err := spgemm.MultiplyOutOfCore(loaded, loaded, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Chunks < 2 {
		t.Fatalf("planned run was not out-of-core: %d chunks", stats.Chunks)
	}
	if err := spgemm.WriteMatrixMarket(cPath, c); err != nil {
		t.Fatal(err)
	}
	cBack, err := spgemm.ReadMatrixMarket(cPath)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := spgemm.Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.Equal(cBack, ref, 1e-9) {
		t.Fatal("product from file differs from CPU reference")
	}
}

// TestEndToEndApplications drives both application substrates through
// the out-of-core engine on one shared device configuration.
func TestEndToEndApplications(t *testing.T) {
	cfg := spgemm.V100WithMemory(8 << 20)
	mult := func(a, b *spgemm.Matrix) (*spgemm.Matrix, error) {
		opts, err := spgemm.Plan(a, b, cfg)
		if err != nil {
			return nil, err
		}
		c, _, err := spgemm.MultiplyOutOfCore(a, b, cfg, opts)
		return c, err
	}

	// AMG: solve a Poisson problem with Galerkin products on the
	// simulated GPU.
	lap := spgemm.Stencil2D(40, 40)
	pinned := lap.Clone()
	pinned.Data[0] += 1
	h, err := amg.Build(pinned, amg.Options{Multiply: mult})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, pinned.Rows)
	for i := range b {
		b[i] = 1
	}
	_, rel, cycles, err := h.Solve(b, 1e-8, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 1e-8 {
		t.Fatalf("AMG did not converge: %.2e after %d cycles", rel, cycles)
	}

	// Graph: triangles of a scale-free graph via A² on the same device.
	g := spgemm.RMAT(9, 6, 0.57, 0.19, 0.19, 82)
	// Symmetrize so triangle counting semantics hold.
	var es []spgemm.Entry
	for r := 0; r < g.Rows; r++ {
		cols, _ := g.Row(r)
		for _, c := range cols {
			if int32(r) != c {
				es = append(es, spgemm.Entry{Row: int32(r), Col: c, Val: 1}, spgemm.Entry{Row: c, Col: int32(r), Val: 1})
			}
		}
	}
	sym, err := spgemm.FromEntries(g.Rows, g.Cols, es)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sym.Data {
		sym.Data[i] = 1
	}
	viaGPU, err := graph.Triangles(sym, mult)
	if err != nil {
		t.Fatal(err)
	}
	viaCPU, err := graph.Triangles(sym, nil)
	if err != nil {
		t.Fatal(err)
	}
	if viaGPU != viaCPU {
		t.Fatalf("triangle counts differ: %d vs %d", viaGPU, viaCPU)
	}
	if viaGPU == 0 {
		t.Fatal("scale-free graph has no triangles (implausible)")
	}
}

// TestLargeScaleSmoke pushes one large product (tens of millions of
// flops, millions of output non-zeros) through every engine and checks
// they agree — the closest a unit test comes to the paper's scale.
// Skipped in -short mode.
func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke test in -short mode")
	}
	a := spgemm.RMAT(13, 12, 0.57, 0.19, 0.19, 777) // 8192 vertices, ~90k edges
	flops := spgemm.Flops(a, a)
	if flops < 20_000_000 {
		t.Fatalf("test matrix too small: %d flops", flops)
	}

	ref, err := spgemm.Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("large product: %d flops, %d output nnz", flops, ref.Nnz())

	cfg := spgemm.V100WithMemory(ref.Bytes()/2 + 2*a.Bytes())
	opts, err := spgemm.Plan(a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ooc, st, err := spgemm.MultiplyOutOfCore(a, a, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.Equal(ooc, ref, 1e-9) {
		t.Fatal("out-of-core product differs at scale")
	}
	if st.Chunks < 2 {
		t.Fatalf("not out-of-core: %d chunks", st.Chunks)
	}

	hy, _, err := spgemm.MultiplyHybrid(a, a, cfg, spgemm.HybridOptions{Core: opts, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.Equal(hy, ref, 1e-9) {
		t.Fatal("hybrid product differs at scale")
	}

	mg, _, err := spgemm.MultiplyMultiGPU(a, a, cfg, spgemm.MultiGPUOptions{Core: opts, NumGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.Equal(mg, ref, 1e-9) {
		t.Fatal("multi-GPU product differs at scale")
	}

	sm, _, err := spgemm.MultiplySUMMA(a, a, spgemm.SUMMAConfig{Q: 3, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.Equal(sm, ref, 1e-9) {
		t.Fatal("SUMMA product differs at scale")
	}
}
