package repro

// Resource-leak audits: a run that is aborted — by deadline, device
// loss, OOM pressure or abandonment — must not leak. Two resources
// are audited: goroutines (the discrete-event kernel's processes are
// real goroutines, so an abort path that forgets one blocks it
// forever) and simulated device memory (the engines' host-side
// teardown must return every live allocation, publishing the residue
// as mem_in_use_bytes, which these tests pin to zero).

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/spgemm"
)

// settleGoroutines polls until the goroutine count drops to the
// baseline or the settle window expires, and returns the final count.
// Aborted sim runs unwind their process goroutines asynchronously, so
// a single instantaneous read would race the cleanup.
func settleGoroutines(baseline int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestAuditDeadlineNoLeaks aborts every registered engine with an
// immediate deadline and asserts (a) the error is a clean ErrDeadline
// (or nil for engines that legitimately finish or ignore deadlines),
// (b) no device memory stays accounted after teardown, and (c) no
// goroutine outlives its run.
func TestAuditDeadlineNoLeaks(t *testing.T) {
	a, _ := chaosMatrix(0)
	cfg := spgemm.V100WithMemory(1 << 20)
	// Engines whose run loops check the deadline; the rest (cpu-merge,
	// cpu-outer, auto, summa on this tiny input) may finish first, but
	// must never return any *other* error or leak.
	mustDeadline := map[string]bool{
		"cpu": true, "gpu": true, "gpu-sync": true, "hybrid": true, "multigpu": true,
	}
	baseline := runtime.NumGoroutine()
	for _, name := range spgemm.Engines() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng, err := spgemm.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			col := spgemm.NewCollector()
			_, _, err = eng.Run(a, a, &spgemm.RunOptions{
				Device:      &cfg,
				Core:        spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
				NumGPUs:     2,
				Metrics:     col,
				DeadlineSec: 1e-9,
			})
			if err != nil && !errors.Is(err, spgemm.ErrDeadline) {
				t.Fatalf("err = %v, want nil or ErrDeadline", err)
			}
			if mustDeadline[name] && err == nil {
				t.Fatalf("engine ignored DeadlineSec=1e-9")
			}
			if leaked := col.Snapshot()[metrics.CounterMemInUse]; leaked != 0 {
				t.Fatalf("device memory leaked after deadline abort: %d bytes", leaked)
			}
		})
	}
	if n := settleGoroutines(baseline); n > baseline {
		t.Fatalf("goroutines leaked across deadline-aborted runs: baseline %d, now %d", baseline, n)
	}
}

// TestAuditFaultAbortNoArenaLeak drives the abort paths the chaos
// suite exercises for correctness — device loss, OOM pressure, retry
// exhaustion — and audits them for resource leaks instead: whether
// the run succeeds or fails, the accounted device memory must return
// to zero and the goroutine count to its baseline.
func TestAuditFaultAbortNoArenaLeak(t *testing.T) {
	a, _ := chaosMatrix(0)
	cfg := spgemm.V100WithMemory(1 << 20)
	cases := []struct {
		name    string
		engine  string
		faults  spgemm.FaultConfig
		retries int
		gpus    int
	}{
		{"gpu-device-lost", "gpu", spgemm.FaultConfig{Seed: 1, LossAfterOps: 20}, 0, 0},
		{"gpu-oom-pressure", "gpu", spgemm.FaultConfig{Seed: 2, TransferRate: 0.02, OOMShrink: 0.3}, 10, 0},
		{"gpu-oom-hard", "gpu", spgemm.FaultConfig{Seed: 3, OOMShrink: 0.9}, 0, 0},
		{"gpu-retries-exhausted", "gpu", spgemm.FaultConfig{Seed: 4, TransferRate: 0.9, KernelRate: 0.9}, -1, 0},
		{"hybrid-loss", "hybrid", spgemm.FaultConfig{Seed: 3, TransferRate: 0.02, LossAfterOps: 60}, 0, 0},
		{"multigpu-loss", "multigpu", spgemm.FaultConfig{Seed: 5, LossAfterOps: 30}, 0, 2},
	}
	baseline := runtime.NumGoroutine()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng, err := spgemm.ByName(tc.engine)
			if err != nil {
				t.Fatal(err)
			}
			col := spgemm.NewCollector()
			_, _, err = eng.Run(a, a, &spgemm.RunOptions{
				Device:       &cfg,
				Core:         spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
				Faults:       tc.faults,
				ChunkRetries: tc.retries,
				NumGPUs:      tc.gpus,
				UseCPU:       tc.gpus > 0,
				Metrics:      col,
			})
			// The error (if any) must be from the typed taxonomy; the
			// audit itself is about what the abort left behind.
			if err != nil &&
				!errors.Is(err, spgemm.ErrDeviceLost) && !errors.Is(err, spgemm.ErrOOM) &&
				!errors.Is(err, spgemm.ErrChunkAbandoned) && !errors.Is(err, spgemm.ErrDeadline) {
				t.Fatalf("untyped abort error: %v", err)
			}
			if leaked := col.Snapshot()[metrics.CounterMemInUse]; leaked != 0 {
				t.Fatalf("device memory leaked after abort (err=%v): %d bytes", err, leaked)
			}
		})
	}
	if n := settleGoroutines(baseline); n > baseline {
		t.Fatalf("goroutines leaked across aborted runs: baseline %d, now %d", baseline, n)
	}
}
