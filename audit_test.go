package repro

// Resource-leak audits: a run that is aborted — by deadline, device
// loss, OOM pressure or abandonment — must not leak. Two resources
// are audited: goroutines (the discrete-event kernel's processes are
// real goroutines, so an abort path that forgets one blocks it
// forever) and simulated device memory (the engines' host-side
// teardown must return every live allocation, publishing the residue
// as mem_in_use_bytes, which these tests pin to zero).

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

// settleGoroutines polls until the goroutine count drops to the
// baseline or the settle window expires, and returns the final count.
// Aborted sim runs unwind their process goroutines asynchronously, so
// a single instantaneous read would race the cleanup.
func settleGoroutines(baseline int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestAuditDeadlineNoLeaks aborts every registered engine with an
// immediate deadline and asserts (a) the error is a clean ErrDeadline
// (or nil for engines that legitimately finish or ignore deadlines),
// (b) no device memory stays accounted after teardown, and (c) no
// goroutine outlives its run.
func TestAuditDeadlineNoLeaks(t *testing.T) {
	a, _ := chaosMatrix(0)
	cfg := spgemm.V100WithMemory(1 << 20)
	// Engines whose run loops check the deadline; the rest (cpu-merge,
	// cpu-outer, auto, summa on this tiny input) may finish first, but
	// must never return any *other* error or leak.
	mustDeadline := map[string]bool{
		"cpu": true, "gpu": true, "gpu-sync": true, "hybrid": true, "multigpu": true,
	}
	baseline := runtime.NumGoroutine()
	for _, name := range spgemm.Engines() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng, err := spgemm.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			col := spgemm.NewCollector()
			_, _, err = eng.Run(a, a, &spgemm.RunOptions{
				Device:      &cfg,
				Core:        spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
				NumGPUs:     2,
				Metrics:     col,
				DeadlineSec: 1e-9,
			})
			if err != nil && !errors.Is(err, spgemm.ErrDeadline) {
				t.Fatalf("err = %v, want nil or ErrDeadline", err)
			}
			if mustDeadline[name] && err == nil {
				t.Fatalf("engine ignored DeadlineSec=1e-9")
			}
			if leaked := col.Snapshot()[metrics.CounterMemInUse]; leaked != 0 {
				t.Fatalf("device memory leaked after deadline abort: %d bytes", leaked)
			}
		})
	}
	if n := settleGoroutines(baseline); n > baseline {
		t.Fatalf("goroutines leaked across deadline-aborted runs: baseline %d, now %d", baseline, n)
	}
}

// TestAuditFaultAbortNoArenaLeak drives the abort paths the chaos
// suite exercises for correctness — device loss, OOM pressure, retry
// exhaustion — and audits them for resource leaks instead: whether
// the run succeeds or fails, the accounted device memory must return
// to zero and the goroutine count to its baseline.
func TestAuditFaultAbortNoArenaLeak(t *testing.T) {
	a, _ := chaosMatrix(0)
	cfg := spgemm.V100WithMemory(1 << 20)
	cases := []struct {
		name    string
		engine  string
		faults  spgemm.FaultConfig
		retries int
		gpus    int
	}{
		{"gpu-device-lost", "gpu", spgemm.FaultConfig{Seed: 1, LossAfterOps: 20}, 0, 0},
		{"gpu-oom-pressure", "gpu", spgemm.FaultConfig{Seed: 2, TransferRate: 0.02, OOMShrink: 0.3}, 10, 0},
		{"gpu-oom-hard", "gpu", spgemm.FaultConfig{Seed: 3, OOMShrink: 0.9}, 0, 0},
		{"gpu-retries-exhausted", "gpu", spgemm.FaultConfig{Seed: 4, TransferRate: 0.9, KernelRate: 0.9}, -1, 0},
		{"hybrid-loss", "hybrid", spgemm.FaultConfig{Seed: 3, TransferRate: 0.02, LossAfterOps: 60}, 0, 0},
		{"multigpu-loss", "multigpu", spgemm.FaultConfig{Seed: 5, LossAfterOps: 30}, 0, 2},
	}
	baseline := runtime.NumGoroutine()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng, err := spgemm.ByName(tc.engine)
			if err != nil {
				t.Fatal(err)
			}
			col := spgemm.NewCollector()
			_, _, err = eng.Run(a, a, &spgemm.RunOptions{
				Device:       &cfg,
				Core:         spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
				Faults:       tc.faults,
				ChunkRetries: tc.retries,
				NumGPUs:      tc.gpus,
				UseCPU:       tc.gpus > 0,
				Metrics:      col,
			})
			// The error (if any) must be from the typed taxonomy; the
			// audit itself is about what the abort left behind.
			if err != nil &&
				!errors.Is(err, spgemm.ErrDeviceLost) && !errors.Is(err, spgemm.ErrOOM) &&
				!errors.Is(err, spgemm.ErrChunkAbandoned) && !errors.Is(err, spgemm.ErrDeadline) {
				t.Fatalf("untyped abort error: %v", err)
			}
			if leaked := col.Snapshot()[metrics.CounterMemInUse]; leaked != 0 {
				t.Fatalf("device memory leaked after abort (err=%v): %d bytes", err, leaked)
			}
		})
	}
	if n := settleGoroutines(baseline); n > baseline {
		t.Fatalf("goroutines leaked across aborted runs: baseline %d, now %d", baseline, n)
	}
}

// --- drain-vs-batch race -----------------------------------------------

var (
	drainBlockOnce sync.Once
	// drainBlockGate holds the channel the "drain-block" engine waits
	// on; nil (or a closed channel) makes the engine a plain passthrough
	// so the engine-sweep audits above stay unaffected by it.
	drainBlockGate atomic.Value // chan struct{}
	// drainBlockEntered receives one token when the engine is actually
	// inside its run, so the test can race Drain against a batch that is
	// provably mid-flight rather than merely admitted.
	drainBlockEntered atomic.Value // chan struct{}
)

type drainBlockEngine struct{}

func (drainBlockEngine) Name() string     { return "drain-block" }
func (drainBlockEngine) Describe() string { return "test engine: blocks on a gate" }
func (drainBlockEngine) Run(a, b *spgemm.Matrix, _ *spgemm.RunOptions) (*spgemm.Matrix, spgemm.Report, error) {
	if ch, ok := drainBlockEntered.Load().(chan struct{}); ok && ch != nil {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	if gate, ok := drainBlockGate.Load().(chan struct{}); ok && gate != nil {
		<-gate
	}
	c, err := spgemm.MultiplyCPU(a, b, 1)
	return c, nil, err
}

// TestAuditDrainAbandonsBatchNoLeaks races serve.Drain against a batch
// that is already admitted and mid-flight: the running node must finish
// cleanly, the node the drain deadline catches still queued must resolve
// with the typed deadline code (the abandon taxonomy), its dependent
// must be skipped with upstream_failed, the abandon must be counted, and
// nothing — worker pool, batch executor, drain waiter — may leak a
// goroutine.
func TestAuditDrainAbandonsBatchNoLeaks(t *testing.T) {
	drainBlockOnce.Do(func() { spgemm.Register(drainBlockEngine{}) })
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	drainBlockGate.Store(gate)
	drainBlockEntered.Store(entered)

	baseline := runtime.NumGoroutine()
	// One worker: the batch executor runs "head" first while "stuck"
	// waits its turn, which is exactly the window the drain deadline hits.
	s := serve.New(serve.Config{MaxConcurrent: 1})
	a, _ := chaosMatrix(1)
	h, err := s.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}

	type batchOut struct {
		resp *apiv1.BatchResponse
		err  error
	}
	batchDone := make(chan batchOut, 1)
	go func() {
		resp, err := s.SubmitBatch(&apiv1.BatchRequest{Nodes: []apiv1.BatchNode{
			{ID: "head", Engine: "drain-block", A: apiv1.Operand{Handle: h}},
			{ID: "stuck", Engine: "cpu", A: apiv1.Operand{Handle: h}},
			{ID: "child", Engine: "cpu", A: apiv1.Operand{Node: "stuck"}, B: &apiv1.Operand{Handle: h}},
		}})
		batchDone <- batchOut{resp, err}
	}()
	<-entered // "head" is inside the engine; "stuck" is queued behind it

	snapDone := make(chan map[string]int64, 1)
	go func() { snapDone <- s.Drain(20 * time.Millisecond) }()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Abandoning() {
		if time.Now().After(deadline) {
			t.Fatal("drain deadline never flipped to abandonment")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // release "head" only after queued work is being abandoned

	out := <-batchDone
	if out.err != nil {
		t.Fatalf("admitted batch turned into an error under drain: %v", out.err)
	}
	byID := map[string]apiv1.NodeResult{}
	for _, nr := range out.resp.Nodes {
		byID[nr.ID] = nr
	}
	if nr := byID["head"]; nr.Status != apiv1.StatusOK {
		t.Fatalf("running node should finish cleanly: %+v", nr)
	}
	if nr := byID["stuck"]; nr.Status != apiv1.StatusFailed || nr.Error == nil || nr.Error.Code != apiv1.CodeDeadline {
		t.Fatalf("abandoned node = %+v, want failed with code %q", nr, apiv1.CodeDeadline)
	}
	if nr := byID["child"]; nr.Status != apiv1.StatusSkipped || nr.Error == nil || nr.Error.Code != apiv1.CodeUpstreamFailed {
		t.Fatalf("dependent of abandoned node = %+v, want skipped with code %q", nr, apiv1.CodeUpstreamFailed)
	}

	snap := <-snapDone
	if snap[metrics.CounterServeAbandoned] != 1 {
		t.Fatalf("%s = %d, want 1", metrics.CounterServeAbandoned, snap[metrics.CounterServeAbandoned])
	}
	if snap[metrics.CounterServeBatchesCompleted] != 1 {
		t.Fatalf("batch not accounted as completed under drain: %v", snap)
	}
	if jobs, flops := s.Inflight(); jobs != 0 || flops != 0 {
		t.Fatalf("inflight after drained batch = %d/%d, want 0/0", jobs, flops)
	}
	if n := settleGoroutines(baseline); n > baseline {
		t.Fatalf("goroutines leaked across drain-vs-batch race: baseline %d, now %d", baseline, n)
	}
}
