// Package repro holds the top-level benchmark harness: one benchmark
// per table and figure of the paper's evaluation section, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// benchmark reports its experiment's headline numbers as custom
// metrics (sim_* metrics are simulated time under the device cost
// model; wall time is the real cost of running the reproduction).
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/hybrid"
	"repro/internal/summa"
)

// BenchmarkTable2Suite regenerates Table II: it performs each matrix's
// full multiplication on the real multi-core CPU engine and reports
// the measured compression ratio.
func BenchmarkTable2Suite(b *testing.B) {
	for _, r := range exp.MustSuite() {
		r := r
		b.Run(r.Entry.Abbr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := exp.RecomputeProduct(r)
				if err != nil {
					b.Fatal(err)
				}
				if c.Nnz() != r.C.Nnz() {
					b.Fatalf("nondeterministic product: %d vs %d", c.Nnz(), r.C.Nnz())
				}
			}
			b.ReportMetric(r.CR(), "compr_ratio")
			b.ReportMetric(float64(r.Flops), "flops")
			b.ReportMetric(float64(r.C.Nnz()), "nnz_C")
		})
	}
}

// BenchmarkFig4TransferFraction regenerates Figure 4: the share of
// synchronous spECK's runtime spent in PCIe transfers.
func BenchmarkFig4TransferFraction(b *testing.B) {
	for _, r := range exp.MustSuite() {
		r := r
		b.Run(r.Entry.Abbr, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				opts := r.CoreOpts()
				opts.DynamicAlloc = true
				_, st, err := core.Run(r.A, r.A, r.Cfg(), opts)
				if err != nil {
					b.Fatal(err)
				}
				frac = st.TransferFraction
			}
			b.ReportMetric(frac*100, "transfer_%")
		})
	}
}

// BenchmarkFig7GFLOPS regenerates Figure 7: simulated GFLOPS of the
// CPU baseline, the out-of-core GPU engine and the hybrid engine.
func BenchmarkFig7GFLOPS(b *testing.B) {
	for _, r := range exp.MustSuite() {
		r := r
		b.Run(r.Entry.Abbr, func(b *testing.B) {
			var row exp.Fig7Row
			for i := 0; i < b.N; i++ {
				rows, err := exp.Fig7Data([]*exp.Run{r})
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(row.CPUGF, "cpu_GFLOPS")
			b.ReportMetric(row.GPUGF, "gpu_GFLOPS")
			b.ReportMetric(row.HybridGF, "hybrid_GFLOPS")
			b.ReportMetric(row.GPUOverCPU, "gpu/cpu")
			b.ReportMetric(row.HybridOverGPU, "hybrid/gpu")
		})
	}
}

// BenchmarkFig8AsyncSpeedup regenerates Figure 8: asynchronous vs
// synchronous out-of-core execution.
func BenchmarkFig8AsyncSpeedup(b *testing.B) {
	for _, r := range exp.MustSuite() {
		r := r
		b.Run(r.Entry.Abbr, func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				syncOpts := r.CoreOpts()
				syncOpts.DynamicAlloc = true
				_, syncSt, err := core.Run(r.A, r.A, r.Cfg(), syncOpts)
				if err != nil {
					b.Fatal(err)
				}
				asyncOpts := r.CoreOpts()
				asyncOpts.Async = true
				asyncOpts.Reorder = true
				_, asyncSt, err := core.Run(r.A, r.A, r.Cfg(), asyncOpts)
				if err != nil {
					b.Fatal(err)
				}
				gain = (syncSt.TotalSec/asyncSt.TotalSec - 1) * 100
			}
			b.ReportMetric(gain, "async_speedup_%")
		})
	}
}

// BenchmarkFig9Reordering regenerates Figure 9: the hybrid engine with
// and without flop-sorted chunk reordering.
func BenchmarkFig9Reordering(b *testing.B) {
	for _, r := range exp.MustSuite() {
		r := r
		b.Run(r.Entry.Abbr, func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				_, def, err := hybrid.Run(r.A, r.A, r.Cfg(), hybrid.Options{Core: r.CoreOpts(), Reorder: false})
				if err != nil {
					b.Fatal(err)
				}
				_, reord, err := hybrid.Run(r.A, r.A, r.Cfg(), hybrid.Options{Core: r.CoreOpts(), Reorder: true})
				if err != nil {
					b.Fatal(err)
				}
				gain = (def.TotalSec/reord.TotalSec - 1) * 100
			}
			b.ReportMetric(gain, "reorder_gain_%")
		})
	}
}

// BenchmarkFig10RatioSweep regenerates Figure 10: hybrid GFLOPS as a
// function of the GPU flop-allocation ratio, on the paper's two
// representative matrices.
func BenchmarkFig10RatioSweep(b *testing.B) {
	for _, abbr := range []string{"com-lj", "nlp"} {
		r, err := exp.SuiteRun(abbr)
		if err != nil {
			b.Fatal(err)
		}
		for _, ratio := range exp.Fig10Ratios {
			ratio := ratio
			b.Run(fmt.Sprintf("%s/ratio=%.0f%%", abbr, ratio*100), func(b *testing.B) {
				var gf float64
				for i := 0; i < b.N; i++ {
					_, st, err := hybrid.Run(r.A, r.A, r.Cfg(), hybrid.Options{
						Core: r.CoreOpts(), Reorder: true, Ratio: ratio,
					})
					if err != nil {
						b.Fatal(err)
					}
					gf = st.GFLOPS
				}
				b.ReportMetric(gf, "hybrid_GFLOPS")
			})
		}
	}
}

// BenchmarkTable3ChunkAllocation regenerates Table III: the GPU chunk
// count under the fixed ratio vs the exhaustively best count.
func BenchmarkTable3ChunkAllocation(b *testing.B) {
	for _, r := range exp.MustSuite() {
		r := r
		b.Run(r.Entry.Abbr, func(b *testing.B) {
			var row exp.Table3Row
			for i := 0; i < b.N; i++ {
				rows, err := exp.Table3Data([]*exp.Run{r})
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(float64(row.BestChunks), "best_chunks")
			b.ReportMetric(float64(row.FixedChunks), "fixed_ratio_chunks")
			b.ReportMetric(row.LossPct, "fixed_ratio_loss_%")
		})
	}
}

// BenchmarkAblationUpperBound quantifies the waste of worst-case
// output allocation (Section IV-B's rejected alternative).
func BenchmarkAblationUpperBound(b *testing.B) {
	for _, r := range exp.MustSuite() {
		r := r
		b.Run(r.Entry.Abbr, func(b *testing.B) {
			var waste float64
			for i := 0; i < b.N; i++ {
				waste = exp.UpperBoundWaste(r)
			}
			b.ReportMetric(waste, "ub_waste_x")
		})
	}
}

// BenchmarkAblationUnifiedMemory compares the out-of-core framework
// against the unified-memory execution model of Section I.
func BenchmarkAblationUnifiedMemory(b *testing.B) {
	for _, abbr := range []string{"com-lj", "stokes", "nlp"} {
		r, err := exp.SuiteRun(abbr)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(abbr, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				umSec, err := exp.RunUnifiedMemory(r)
				if err != nil {
					b.Fatal(err)
				}
				opts := r.CoreOpts()
				opts.Async = true
				opts.Reorder = true
				_, st, err := core.Run(r.A, r.A, r.Cfg(), opts)
				if err != nil {
					b.Fatal(err)
				}
				speedup = umSec / st.TotalSec
			}
			b.ReportMetric(speedup, "ooc_over_um_x")
		})
	}
}

// BenchmarkAblationBuffers sweeps the async pipeline's output buffer
// count (the paper double-buffers; more buffers trade memory for
// variance tolerance).
func BenchmarkAblationBuffers(b *testing.B) {
	counts := []int{2, 3, 4}
	for _, abbr := range []string{"com-lj", "nlp"} {
		r, err := exp.SuiteRun(abbr)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(abbr, func(b *testing.B) {
			var secs []float64
			for i := 0; i < b.N; i++ {
				if secs, err = exp.BufferSweep(r, counts); err != nil {
					b.Fatal(err)
				}
			}
			for i, n := range counts {
				b.ReportMetric(secs[i]*1e3, fmt.Sprintf("sim_ms_%dbuf", n))
			}
		})
	}
}

// BenchmarkExtensionSUMMA measures the distributed sparse-SUMMA
// extension (the paper's reference [33] setting) at three cluster
// sizes.
func BenchmarkExtensionSUMMA(b *testing.B) {
	for _, abbr := range []string{"com-lj", "nlp"} {
		r, err := exp.SuiteRun(abbr)
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range exp.DistributedGrids {
			q := q
			b.Run(fmt.Sprintf("%s/%dx%d", abbr, q, q), func(b *testing.B) {
				var gf float64
				for i := 0; i < b.N; i++ {
					_, st, err := summa.Run(r.A, r.A, summa.Config{Q: q})
					if err != nil {
						b.Fatal(err)
					}
					gf = st.GFLOPS
				}
				b.ReportMetric(gf, "summa_GFLOPS")
			})
		}
	}
}

// BenchmarkAblationSplitFraction sweeps the divided-transfer first
// portion around the paper's 33% (Section IV-B).
func BenchmarkAblationSplitFraction(b *testing.B) {
	for _, abbr := range []string{"com-lj", "nlp"} {
		r, err := exp.SuiteRun(abbr)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range exp.SplitFractions {
			f := f
			b.Run(fmt.Sprintf("%s/split=%.0f%%", abbr, f*100), func(b *testing.B) {
				var ms float64
				for i := 0; i < b.N; i++ {
					opts := r.CoreOpts()
					opts.Async = true
					opts.Reorder = true
					opts.SplitFraction = f
					_, st, err := core.Run(r.A, r.A, r.Cfg(), opts)
					if err != nil {
						b.Fatal(err)
					}
					ms = st.TotalSec * 1e3
				}
				b.ReportMetric(ms, "sim_ms")
			})
		}
	}
}

// BenchmarkAblationPinnedMemory compares pinned host buffers (the
// paper's configuration) against pageable host memory, whose staging
// penalty inflates every DMA transfer.
func BenchmarkAblationPinnedMemory(b *testing.B) {
	for _, abbr := range []string{"com-lj", "nlp"} {
		r, err := exp.SuiteRun(abbr)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(abbr, func(b *testing.B) {
			var slowdown float64
			for i := 0; i < b.N; i++ {
				opts := r.CoreOpts()
				opts.Async = true
				opts.Reorder = true
				_, pinned, err := core.Run(r.A, r.A, r.Cfg(), opts)
				if err != nil {
					b.Fatal(err)
				}
				cfg := r.Cfg()
				cfg.PageableHostMemory = true
				_, pageable, err := core.Run(r.A, r.A, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
				slowdown = pageable.TotalSec / pinned.TotalSec
			}
			b.ReportMetric(slowdown, "pageable_slowdown_x")
		})
	}
}
