package repro

// Chaos-soak suite for the fault-injection layer: seeded fault
// scenarios across the gpu, gpu-sync, hybrid and multigpu engines must
// complete through retry / CPU fallback / device failover with no
// panic and a product matching the CPU reference, and the recovery
// counters must reconcile exactly with the injected fault counts.
//
// Failing scenarios print their full spec (engine, matrix, fault
// config) so a CI failure can be replayed locally with a one-line
// test filter or a spgemm-run -faults invocation.

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

// simSpans filters a collector's timeline down to the simulated-clock
// domain: wall-domain spans carry real timestamps and legitimately
// differ between otherwise identical runs.
func simSpans(spans []metrics.Span) []metrics.Span {
	var out []metrics.Span
	for _, s := range spans {
		if s.Domain == metrics.Sim {
			out = append(out, s)
		}
	}
	return out
}

// chaosMatrix rotates over small but structurally distinct inputs:
// scale-free (hub rows), uniform random, and banded.
func chaosMatrix(i int) (*spgemm.Matrix, string) {
	switch i % 3 {
	case 0:
		return spgemm.RMAT(7, 8, 0.57, 0.19, 0.19, int64(100+i)), fmt.Sprintf("rmat(seed=%d)", 100+i)
	case 1:
		return spgemm.ER(300, 300, 0.03, int64(200+i)), fmt.Sprintf("er(seed=%d)", 200+i)
	default:
		return spgemm.Band(400, 8, int64(300+i)), fmt.Sprintf("band(seed=%d)", 300+i)
	}
}

// refCache memoizes the CPU reference product per input matrix.
var refCache = map[*spgemm.Matrix]*spgemm.Matrix{}

func reference(t *testing.T, a *spgemm.Matrix) *spgemm.Matrix {
	t.Helper()
	if c, ok := refCache[a]; ok {
		return c
	}
	c, err := spgemm.MultiplyCPU(a, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	refCache[a] = c
	return c
}

type chaosScenario struct {
	engine  string
	cfg     spgemm.FaultConfig
	gpus    int
	retries int
}

// chaosSeeds trims a scenario family's seed sweep in -short mode: CI's
// default test job runs two seeds per family (every fault class still
// covered), while the chaos-soak job runs the full sweep.
func chaosSeeds(full int64) int64 {
	if testing.Short() && full > 2 {
		return 2
	}
	return full
}

// chaosScenarios builds the seed sweep: >= 50 scenarios spanning
// transient faults, stragglers, OOM pressure and device loss (reduced
// to two seeds per family under -short).
func chaosScenarios() []chaosScenario {
	var out []chaosScenario
	// Transient transfer/kernel faults + stragglers on the GPU-only
	// engines: a generous retry budget must absorb everything.
	for seed := int64(1); seed <= chaosSeeds(14); seed++ {
		out = append(out, chaosScenario{
			engine:  "gpu",
			cfg:     spgemm.FaultConfig{Seed: seed, TransferRate: 0.03, KernelRate: 0.02, StragglerRate: 0.05},
			retries: 10,
		})
	}
	for seed := int64(1); seed <= chaosSeeds(8); seed++ {
		out = append(out, chaosScenario{
			engine:  "gpu-sync",
			cfg:     spgemm.FaultConfig{Seed: seed, TransferRate: 0.03, KernelRate: 0.02},
			retries: 10,
		})
	}
	// Hybrid: higher rates with the default (small) budget, so some
	// chunks are abandoned and must be absorbed by the CPU worker.
	for seed := int64(1); seed <= chaosSeeds(12); seed++ {
		out = append(out, chaosScenario{
			engine: "hybrid",
			cfg:    spgemm.FaultConfig{Seed: seed, TransferRate: 0.06, KernelRate: 0.04, StragglerRate: 0.05},
		})
	}
	// Hybrid with mid-run device loss: every remaining GPU chunk must
	// degrade to the CPU worker.
	for seed := int64(1); seed <= chaosSeeds(4); seed++ {
		out = append(out, chaosScenario{
			engine: "hybrid",
			cfg:    spgemm.FaultConfig{Seed: seed, TransferRate: 0.02, LossAfterOps: 60},
		})
	}
	// Multi-GPU: transient faults redistribute chunks between devices
	// and, past their budget, to the CPU worker.
	for seed := int64(1); seed <= chaosSeeds(10); seed++ {
		out = append(out, chaosScenario{
			engine: "multigpu",
			cfg:    spgemm.FaultConfig{Seed: seed, TransferRate: 0.06, KernelRate: 0.04},
			gpus:   2,
		})
	}
	// Multi-GPU with device loss: both devices eventually die and the
	// CPU worker adopts everything left.
	for seed := int64(1); seed <= chaosSeeds(4); seed++ {
		out = append(out, chaosScenario{
			engine: "multigpu",
			cfg:    spgemm.FaultConfig{Seed: seed, TransferRate: 0.02, LossAfterOps: 80},
			gpus:   2,
		})
	}
	// OOM pressure: a shrunken arena must still fit the planned grid's
	// working set or fail over, never panic.
	for seed := int64(1); seed <= chaosSeeds(2); seed++ {
		out = append(out, chaosScenario{
			engine:  "gpu",
			cfg:     spgemm.FaultConfig{Seed: seed, TransferRate: 0.02, OOMShrink: 0.3},
			retries: 10,
		})
	}
	return out
}

func runScenario(t *testing.T, i int, sc chaosScenario) {
	t.Helper()
	a, desc := chaosMatrix(i)
	cfg := spgemm.V100WithMemory(1 << 20)
	eng, err := spgemm.ByName(sc.engine)
	if err != nil {
		t.Fatal(err)
	}
	opts := &spgemm.RunOptions{
		Device:       &cfg,
		Core:         spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
		Faults:       sc.cfg,
		ChunkRetries: sc.retries,
		NumGPUs:      sc.gpus,
		UseCPU:       sc.gpus > 0,
		Metrics:      spgemm.NewCollector(),
	}
	c, report, err := eng.Run(a, a, opts)
	if err != nil {
		t.Fatalf("scenario %d [%s on %s, faults %+v]: %v", i, sc.engine, desc, sc.cfg, err)
	}
	if ref := reference(t, a); !spgemm.Equal(c, ref, 1e-9) {
		t.Fatalf("scenario %d [%s on %s, faults %+v]: product differs from CPU reference",
			i, sc.engine, desc, sc.cfg)
	}
	// Reconciliation: every injected transient fault was either
	// absorbed by a retry or abandoned the chunk to a recovery path.
	snap := opts.Metrics.Snapshot()
	injected := snap["faults_injected_transfer"] + snap["faults_injected_kernel"]
	recovered := snap["recovery_retries"] + snap["recovery_abandoned"]
	if injected != recovered {
		t.Fatalf("scenario %d [%s on %s, faults %+v]: %d faults injected but %d retried + %d abandoned",
			i, sc.engine, desc, sc.cfg, injected, snap["recovery_retries"], snap["recovery_abandoned"])
	}
	_ = report
}

// TestChaosSoak runs the seeded scenario sweep: the full >=50 matrix
// normally, the trimmed per-family sample under -short.
func TestChaosSoak(t *testing.T) {
	scenarios := chaosScenarios()
	if !testing.Short() && len(scenarios) < 50 {
		t.Fatalf("only %d chaos scenarios; the soak promises at least 50", len(scenarios))
	}
	for i, sc := range scenarios {
		sc := sc
		i := i
		t.Run(fmt.Sprintf("%03d_%s_seed%d", i, sc.engine, sc.cfg.Seed), func(t *testing.T) {
			runScenario(t, i, sc)
		})
	}
}

// TestChaosDeterminism: the same fault seed must reproduce the run
// bit-for-bit — identical statistics and identical simulated timeline.
func TestChaosDeterminism(t *testing.T) {
	a := spgemm.RMAT(7, 8, 0.57, 0.19, 0.19, 7)
	cfg := spgemm.V100WithMemory(1 << 20)
	run := func() (spgemm.Stats, []metrics.Span) {
		col := spgemm.NewCollector()
		opts := spgemm.OutOfCoreOptions{
			RowPanels: 4, ColPanels: 2, Async: true,
			Faults:  spgemm.FaultConfig{Seed: 11, TransferRate: 0.05, KernelRate: 0.03, StragglerRate: 0.05},
			Metrics: col,
		}
		_, st, err := spgemm.MultiplyOutOfCore(a, a, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return st, simSpans(col.Spans())
	}
	st1, tl1 := run()
	st2, tl2 := run()
	if st1 != st2 {
		t.Fatalf("stats differ across identical fault seeds:\n%+v\n%+v", st1, st2)
	}
	if !reflect.DeepEqual(tl1, tl2) {
		t.Fatal("simulated timelines differ across identical fault seeds")
	}
}

// TestChaosFaultFreeIdentity: a zero FaultConfig must be byte-identical
// to a run without the fault layer configured — same stats, same
// timeline, all recovery counters zero, no injection counters.
func TestChaosFaultFreeIdentity(t *testing.T) {
	a := spgemm.RMAT(7, 8, 0.57, 0.19, 0.19, 9)
	cfg := spgemm.V100WithMemory(1 << 20)
	run := func(fc spgemm.FaultConfig) (spgemm.Stats, []metrics.Span, map[string]int64) {
		col := spgemm.NewCollector()
		opts := spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2, Async: true, Faults: fc, Metrics: col}
		_, st, err := spgemm.MultiplyOutOfCore(a, a, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return st, simSpans(col.Spans()), col.Snapshot()
	}
	stOff, tlOff, snapOff := run(spgemm.FaultConfig{})
	// Seeded but all-zero rates: the injector is disabled entirely.
	stZero, tlZero, _ := run(spgemm.FaultConfig{Seed: 99})
	if stOff != stZero {
		t.Fatalf("stats differ between disabled fault configs:\n%+v\n%+v", stOff, stZero)
	}
	if !reflect.DeepEqual(tlOff, tlZero) {
		t.Fatal("timelines differ between disabled fault configs")
	}
	for _, k := range []string{"recovery_retries", "recovery_abandoned"} {
		if snapOff[k] != 0 {
			t.Errorf("fault-free run has %s = %d", k, snapOff[k])
		}
	}
	for k := range snapOff {
		if len(k) > 15 && k[:15] == "faults_injected" {
			t.Errorf("fault-free run published injection counter %s", k)
		}
	}
}

// TestChaosHybridFallback forces fast abandonment (no retries, high
// fault rates) so the CPU worker must absorb GPU chunks; the product
// must still match the reference.
func TestChaosHybridFallback(t *testing.T) {
	a, _ := chaosMatrix(0)
	cfg := spgemm.V100WithMemory(1 << 20)
	eng, err := spgemm.ByName("hybrid")
	if err != nil {
		t.Fatal(err)
	}
	opts := &spgemm.RunOptions{
		Device:       &cfg,
		Core:         spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
		Faults:       spgemm.FaultConfig{Seed: 3, TransferRate: 0.9, KernelRate: 0.9},
		ChunkRetries: -1, // no retries: first fault abandons the chunk
		Metrics:      spgemm.NewCollector(),
	}
	c, report, err := eng.Run(a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.Equal(c, reference(t, a), 1e-9) {
		t.Fatal("fallback product differs from CPU reference")
	}
	if fb := report.Counters()["recovery_fallbacks"]; fb == 0 {
		t.Fatal("expected CPU fallbacks under 90% fault rates with no retries")
	}
}

// TestChaosMultiGPUFailover kills the devices mid-run; chunks must be
// redistributed and the survivors (ultimately the CPU worker) finish
// the product exactly.
func TestChaosMultiGPUFailover(t *testing.T) {
	a, _ := chaosMatrix(0)
	cfg := spgemm.V100WithMemory(1 << 20)
	eng, err := spgemm.ByName("multigpu")
	if err != nil {
		t.Fatal(err)
	}
	opts := &spgemm.RunOptions{
		Device:  &cfg,
		Core:    spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
		Faults:  spgemm.FaultConfig{Seed: 5, LossAfterOps: 30},
		NumGPUs: 2,
		UseCPU:  true,
		Metrics: spgemm.NewCollector(),
	}
	c, report, err := eng.Run(a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.Equal(c, reference(t, a), 1e-9) {
		t.Fatal("failover product differs from CPU reference")
	}
	counters := report.Counters()
	if counters["recovery_devices_lost"] == 0 {
		t.Fatalf("expected lost devices with LossAfterOps=30; counters %v", counters)
	}
	if counters["recovery_failovers"] == 0 {
		t.Fatalf("expected failovers after device loss; counters %v", counters)
	}
}

// TestChaosGPUDeviceLostTypedError: the GPU-only engine has no
// recovery path for a dead device — the run must end with a typed
// ErrDeviceLost, not a panic or a silent partial product.
func TestChaosGPUDeviceLostTypedError(t *testing.T) {
	a, _ := chaosMatrix(0)
	cfg := spgemm.V100WithMemory(1 << 20)
	eng, err := spgemm.ByName("gpu")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = eng.Run(a, a, &spgemm.RunOptions{
		Device: &cfg,
		Core:   spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
		Faults: spgemm.FaultConfig{Seed: 1, LossAfterOps: 20},
	})
	if !errors.Is(err, spgemm.ErrDeviceLost) {
		t.Fatalf("err = %v, want ErrDeviceLost", err)
	}
}

// TestChaosDeadline: a deadline in the middle of the run surfaces as
// ErrDeadline on both the simulated-clock and wall-clock engines.
func TestChaosDeadline(t *testing.T) {
	a, _ := chaosMatrix(0)
	cfg := spgemm.V100WithMemory(1 << 20)
	gpu, err := spgemm.ByName("gpu")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = gpu.Run(a, a, &spgemm.RunOptions{
		Device:      &cfg,
		Core:        spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
		DeadlineSec: 1e-9, // passes after the first simulated span
	})
	if !errors.Is(err, spgemm.ErrDeadline) {
		t.Fatalf("gpu engine err = %v, want ErrDeadline", err)
	}
}

// TestChaosEstimationDeterminism: the estimation path under fault
// injection must replay bit-for-bit per seed — the estimator samples at
// a deterministic stride (no RNG), so a seeded faulty run in estimation
// mode reproduces identical statistics and simulated timelines, and the
// product still matches the CPU reference.
func TestChaosEstimationDeterminism(t *testing.T) {
	a := spgemm.RMAT(7, 8, 0.57, 0.19, 0.19, 13)
	cfg := spgemm.V100WithMemory(1 << 20)
	run := func() (*spgemm.Matrix, spgemm.Stats, []metrics.Span) {
		col := spgemm.NewCollector()
		opts := spgemm.OutOfCoreOptions{
			RowPanels: 4, ColPanels: 2, Async: true,
			Symbolic: spgemm.SymbolicEstimate,
			Faults:   spgemm.FaultConfig{Seed: 17, TransferRate: 0.05, KernelRate: 0.03, StragglerRate: 0.05},
			Metrics:  col,
		}
		c, st, err := spgemm.MultiplyOutOfCore(a, a, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return c, st, simSpans(col.Spans())
	}
	c1, st1, tl1 := run()
	c2, st2, tl2 := run()
	if st1 != st2 {
		t.Fatalf("estimation stats differ across identical fault seeds:\n%+v\n%+v", st1, st2)
	}
	if !reflect.DeepEqual(tl1, tl2) {
		t.Fatal("estimation timelines differ across identical fault seeds")
	}
	if !spgemm.Equal(c1, c2, 0) {
		t.Fatal("estimation products differ across identical fault seeds")
	}
	if ref := reference(t, a); !spgemm.Equal(c1, ref, 1e-9) {
		t.Fatal("faulty estimation product differs from CPU reference")
	}
}

// TestChaosEstimationFaultFreeIdentity: with the fault layer off, the
// estimation-elided out-of-core run must be bit-identical to the exact
// one — structure, values, and the injected-fault counters all empty.
func TestChaosEstimationFaultFreeIdentity(t *testing.T) {
	a := spgemm.RMAT(7, 8, 0.57, 0.19, 0.19, 15)
	cfg := spgemm.V100WithMemory(1 << 20)
	run := func(mode spgemm.SymbolicMode) *spgemm.Matrix {
		c, _, err := spgemm.MultiplyOutOfCore(a, a, cfg, spgemm.OutOfCoreOptions{
			RowPanels: 4, ColPanels: 2, Symbolic: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	exact := run(spgemm.SymbolicExact)
	est := run(spgemm.SymbolicEstimate)
	if !spgemm.Equal(exact, est, 0) {
		t.Fatal("fault-free estimation product differs from exact")
	}
}

// TestChaosServeEstimationPlanCacheBypass: at the serving layer,
// fault-injected jobs must stay out of the shared plan cache even in
// estimation mode (a faulty run's plan is suspect by policy), while the
// same fault-free job populates it.
func TestChaosServeEstimationPlanCacheBypass(t *testing.T) {
	s := serve.New(serve.Config{
		MaxConcurrent: 1,
		Base:          spgemm.RunOptions{Symbolic: spgemm.SymbolicEstimate},
	})
	defer s.Drain(0)
	a, _ := chaosMatrix(1)
	faulty := &spgemm.RunOptions{
		Symbolic: spgemm.SymbolicEstimate,
		Faults:   spgemm.FaultConfig{Seed: 5, TransferRate: 0.05, KernelRate: 0.03},
	}
	if _, err := s.Submit(serve.Job{Engine: "gpu", A: a, B: a, Opts: faulty}); err != nil {
		t.Fatal(err)
	}
	if n := s.PlanCache().Len(); n != 0 {
		t.Fatalf("fault-injected estimation job left %d plan cache entries", n)
	}
	if _, err := s.Submit(serve.Job{Engine: "gpu", A: a, B: a}); err != nil {
		t.Fatal(err)
	}
	if n := s.PlanCache().Len(); n == 0 {
		t.Fatal("fault-free estimation job did not populate the plan cache")
	}
}

// buildChaosCluster assembles an n-replica coordinator over in-process
// serve servers wrapped in seeded chaos backends — the same wiring as
// spgemm-serve -cluster — with retry backoff sleeps stubbed out so the
// sweep runs at full speed.
func buildChaosCluster(n int) (*cluster.Coordinator, []*cluster.ChaosBackend) {
	backends := make([]cluster.Backend, n)
	chaos := make([]*cluster.ChaosBackend, n)
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{MaxConcurrent: 2})
		cb := cluster.NewChaosBackend(
			cluster.NewLocalReplica(fmt.Sprintf("r%d", i), srv),
			cluster.ChaosConfig{Seed: int64(i + 1)},
		)
		backends[i], chaos[i] = cb, cb
	}
	return cluster.New(cluster.Config{Sleep: func(time.Duration) {}}, backends...), chaos
}

// runClusterKillScenario streams requests through a 3-replica cluster,
// kills one replica mid-stream, and checks the coordinator's promise:
// zero requests lost (every one of them succeeds, through failover or
// not), the admission ledger reconciles (each request admitted exactly
// once across the replica set), and the health state machine records
// exactly one down and one up transition for the kill and the revival.
// It returns the merged counter snapshot for determinism comparison.
func runClusterKillScenario(t *testing.T, victim int) map[string]int64 {
	t.Helper()
	const requests = 30
	coord, chaos := buildChaosCluster(3)
	defer coord.Drain(time.Second)

	a := spgemm.ER(48, 48, 0.08, 401)
	ref := reference(t, a)
	h, err := coord.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < requests; i++ {
		if i == requests/3 {
			// Mid-stream kill, no probe: the request path itself must
			// discover the dead replica (ErrReplicaDown on first touch),
			// condemn it, and fail over to the ring successor.
			chaos[victim].Kill()
		}
		var resp *apiv1.MultiplyResponse
		if i%2 == 0 {
			// Shared-handle traffic: routed to the handle's owner, which
			// forces spill re-upload failover when the owner is the victim.
			resp, err = coord.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: h})
			if err == nil && resp.NnzC != ref.Nnz() {
				t.Fatalf("request %d (kill r%d): nnz_c = %d, want %d", i, victim, resp.NnzC, ref.Nnz())
			}
		} else {
			// Spread traffic: distinct spec keys land on every replica,
			// so some of the post-kill stream is owned by the victim no
			// matter which replica was killed.
			resp, err = coord.Multiply(apiv1.MultiplyRequest{
				Engine: "cpu",
				A:      apiv1.MatrixSpec{Kind: "er", Rows: 32, Cols: 32, Density: 0.1, Seed: int64(500 + i)},
			})
		}
		if err != nil {
			t.Fatalf("request %d lost after killing r%d: %v", i, victim, err)
		}
	}
	chaos[victim].Revive()
	coord.Probe()

	counters := coord.Counters()
	// Reconciliation: every request admitted exactly once across the
	// replica set — failover re-routes only never-admitted requests.
	if got := counters[metrics.CounterServeAccepted]; got != requests {
		t.Fatalf("kill r%d: %d requests admitted across replicas, want %d", victim, got, requests)
	}
	if counters[metrics.CounterServeFailed] != 0 || counters[metrics.CounterServePanicked] != 0 {
		t.Fatalf("kill r%d: replica-side failures under a clean kill: %v", victim, counters)
	}
	if counters[metrics.CounterClusterFailovers] == 0 {
		t.Fatalf("kill r%d: no failovers recorded; the kill was never exercised: %v", victim, counters)
	}
	if d, u := counters[metrics.CounterClusterReplicaDown], counters[metrics.CounterClusterReplicaUp]; d != 1 || u != 1 {
		t.Fatalf("kill r%d: down/up transitions = %d/%d, want 1/1", victim, d, u)
	}
	return counters
}

// TestChaosClusterKillAnyReplica kills each replica of three in turn:
// whichever one dies mid-stream, no admitted request may be lost and
// the recovery counters must reconcile. Each scenario runs twice and
// the merged counter snapshots must match exactly — the coordinator's
// failover path is as seeded-deterministic as the fault injector's.
func TestChaosClusterKillAnyReplica(t *testing.T) {
	for victim := 0; victim < 3; victim++ {
		victim := victim
		t.Run(fmt.Sprintf("kill_r%d", victim), func(t *testing.T) {
			first := runClusterKillScenario(t, victim)
			second := runClusterKillScenario(t, victim)
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("cluster kill scenario not deterministic:\n%v\n%v", first, second)
			}
		})
	}
}

// TestChaosBatchPartialFailure drives a /v1/batch DAG through the
// fault-injection layer: the server's base options kill the simulated
// device mid-run, so the gpu-only node fails with the typed
// device_lost code and its dependent is skipped, while the hybrid node
// on the same batch recovers through CPU fallback and still produces
// the exact reference product. The fault-injected nodes must also stay
// out of the shared plan cache (a warm replay would shift when the
// seeded faults fire), and the server must remain healthy afterwards.
func TestChaosBatchPartialFailure(t *testing.T) {
	cfg := spgemm.V100WithMemory(1 << 20)
	s := serve.New(serve.Config{
		MaxConcurrent: 2,
		Base: spgemm.RunOptions{
			Device: &cfg,
			Core:   spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
			Faults: spgemm.FaultConfig{Seed: 1, LossAfterOps: 20},
		},
	})
	defer s.Drain(0)
	a, _ := chaosMatrix(0)
	h, err := s.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := s.SubmitBatch(&apiv1.BatchRequest{Nodes: []apiv1.BatchNode{
		{ID: "lost", Engine: "gpu", A: apiv1.Operand{Handle: h}},
		{ID: "child", Engine: "cpu", A: apiv1.Operand{Node: "lost"}, B: &apiv1.Operand{Handle: h}},
		{ID: "recovers", Engine: "hybrid", A: apiv1.Operand{Handle: h}, Store: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Completed != 1 || resp.Failed != 1 || resp.Skipped != 1 {
		t.Fatalf("completed/failed/skipped = %d/%d/%d, want 1/1/1; nodes %+v",
			resp.Completed, resp.Failed, resp.Skipped, resp.Nodes)
	}
	byID := map[string]apiv1.NodeResult{}
	for _, nr := range resp.Nodes {
		byID[nr.ID] = nr
	}
	if nr := byID["lost"]; nr.Status != apiv1.StatusFailed || nr.Error == nil || nr.Error.Code != apiv1.CodeDeviceLost {
		t.Fatalf("lost = %+v", nr)
	}
	if nr := byID["child"]; nr.Status != apiv1.StatusSkipped || nr.Error == nil || nr.Error.Code != apiv1.CodeUpstreamFailed {
		t.Fatalf("child = %+v", nr)
	}
	rec := byID["recovers"]
	if rec.Status != apiv1.StatusOK || rec.Handle == "" {
		t.Fatalf("recovers = %+v", rec)
	}
	got, ok := s.Matrix(rec.Handle)
	if !ok {
		t.Fatal("recovered node's stored handle not found")
	}
	if !spgemm.Equal(got, reference(t, a), 1e-9) {
		t.Fatal("recovered product differs from CPU reference")
	}
	if n := s.PlanCache().Len(); n != 0 {
		t.Fatalf("fault-injected batch left %d plan cache entries", n)
	}
	// The batch released its admission unit and the server still serves.
	if jobs, flops := s.Inflight(); jobs != 0 || flops != 0 {
		t.Fatalf("inflight after batch = %d/%d, want 0/0", jobs, flops)
	}
	if _, err := s.Submit(serve.Job{Engine: "hybrid", A: a, B: a}); err != nil {
		t.Fatalf("server unhealthy after chaos batch: %v", err)
	}
}
