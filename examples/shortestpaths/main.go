// Shortestpaths: all-pairs shortest paths by min-plus SpGEMM — the
// GraphBLAS view (the paper's reference [22]) in which changing the
// semiring turns the same sparse kernel into a graph algorithm.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/spgemm"
	"repro/spgemm/semiring"
)

func main() {
	// A random sparse road-network-like graph with positive weights.
	const n = 600
	rng := rand.New(rand.NewSource(3))
	var entries []spgemm.Entry
	for u := 0; u < n; u++ {
		deg := 2 + rng.Intn(3)
		for d := 0; d < deg; d++ {
			v := rng.Intn(n)
			if v != u {
				entries = append(entries, spgemm.Entry{
					Row: int32(u), Col: int32(v), Val: 1 + rng.Float64()*9,
				})
			}
		}
	}
	adj, err := spgemm.FromEntries(n, n, entries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d weighted edges\n", adj.Rows, adj.Nnz())

	// One min-plus product relaxes all 2-hop paths...
	twoHop, err := semiring.Multiply(adj, adj, semiring.MinPlus(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paths of length <=2: %d vertex pairs\n", twoHop.Nnz())

	// ...and log2(n) squarings reach the all-pairs fixpoint.
	dist, err := semiring.APSP(adj, 0)
	if err != nil {
		log.Fatal(err)
	}
	reachable := dist.Nnz() - int64(n) // minus the zero diagonal
	fmt.Printf("all-pairs fixpoint: %d reachable pairs (%.1f%% of all)\n",
		reachable, 100*float64(reachable)/float64(n*(n-1)))

	// The same kernel under or-and answers pure reachability.
	reach, err := semiring.Multiply(adj, adj, semiring.OrAnd(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boolean A² (2-hop reachability): %d pairs\n", reach.Nnz())

	// Spot-check one pair.
	cols, vals := dist.Row(0)
	for i := range cols {
		if cols[i] != 0 {
			fmt.Printf("example: shortest distance 0 -> %d is %.2f\n", cols[i], vals[i])
			break
		}
	}
}
