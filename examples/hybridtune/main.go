// Hybridtune: sweep the GPU/CPU flop-allocation ratio of the hybrid
// engine on one matrix and print the GFLOPS curve — the workflow
// behind the paper's Figure 10 and Table III, as a user program.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/spgemm"
)

func main() {
	a := spgemm.RMAT(12, 9, 0.55, 0.2, 0.2, 1002) // com-LiveJournal analog
	cfg := spgemm.V100WithMemory(24 << 20)
	core, err := spgemm.Plan(a, a, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// A finer grid than the minimal plan smooths the ratio curve (the
	// split is quantized to whole chunks).
	if core.RowPanels < 4 {
		core.RowPanels = 4
	}
	if core.ColPanels < 4 {
		core.ColPanels = 4
	}
	fmt.Printf("matrix: %d vertices, %d edges; grid %dx%d\n",
		a.Rows, a.Nnz(), core.RowPanels, core.ColPanels)
	fmt.Println("ratio  GPU-chunks  CPU-chunks  sim-ms   GFLOPS")

	bestRatio, bestGF := 0.0, 0.0
	for ratio := 0.30; ratio <= 0.96; ratio += 0.05 {
		_, st, err := spgemm.MultiplyHybrid(a, a, cfg, spgemm.HybridOptions{
			Core:    core,
			Reorder: true,
			Ratio:   ratio,
		})
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("#", int(st.GFLOPS*20))
		fmt.Printf("%4.0f%%  %10d  %10d  %6.3f  %6.3f %s\n",
			ratio*100, st.GPUChunks, st.CPUChunks, st.TotalSec*1e3, st.GFLOPS, bar)
		if st.GFLOPS > bestGF {
			bestRatio, bestGF = ratio, st.GFLOPS
		}
	}
	fmt.Printf("\nbest ratio: %.0f%% (%.3f GFLOPS)\n", bestRatio*100, bestGF)
	fmt.Println("the paper finds a fixed ratio near-optimal across matrices (Table III);")
	fmt.Println("the curve above rises to a peak and then drops, as in Figure 10.")
}
