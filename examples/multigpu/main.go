// Multigpu: scale one SpGEMM across several simulated GPUs — the
// "continue to scale to arbitrarily large matrices" direction of the
// paper's conclusion. Chunks of the output grid are independent, so
// devices never need to communicate; scheduling is the whole problem.
package main

import (
	"fmt"
	"log"

	"repro/spgemm"
)

func main() {
	// A web-graph-like matrix with a high compression ratio.
	a := spgemm.Band(24000, 8, 99)
	fmt.Printf("A: %d rows, %d non-zeros; %d flops to square\n",
		a.Rows, a.Nnz(), spgemm.Flops(a, a))

	cfg := spgemm.V100WithMemory(24 << 20)
	core, err := spgemm.Plan(a, a, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// A finer grid exposes more parallelism across devices.
	core.RowPanels, core.ColPanels = core.RowPanels*2, core.ColPanels*2
	fmt.Printf("chunk grid: %dx%d\n\n", core.RowPanels, core.ColPanels)

	// The multi-GPU implementation is a registered engine like any
	// other; only RunOptions.NumGPUs changes between runs.
	eng, err := spgemm.ByName("multigpu")
	if err != nil {
		log.Fatal(err)
	}

	var ref *spgemm.Matrix
	var base float64
	fmt.Println("GPUs  sim-ms   GFLOPS  speedup  chunks/GPU")
	for _, n := range []int{1, 2, 4, 8} {
		c, report, err := eng.Run(a, a, &spgemm.RunOptions{
			Device:  &cfg,
			Core:    core,
			NumGPUs: n,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := report.(spgemm.MultiGPUStats)
		if ref == nil {
			ref = c
			base = st.TotalSec
		} else if !spgemm.Equal(ref, c, 1e-9) {
			log.Fatal("multi-GPU result differs from single-GPU result")
		}
		fmt.Printf("%4d  %6.3f  %6.3f  %6.2fx  %v\n",
			n, st.TotalSec*1e3, st.GFLOPS, base/st.TotalSec, st.GPUChunks)
	}

	// Add the CPU as one more worker.
	_, report, err := eng.Run(a, a, &spgemm.RunOptions{
		Device:  &cfg,
		Core:    core,
		NumGPUs: 8,
		UseCPU:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := report.(spgemm.MultiGPUStats)
	fmt.Printf("\n8 GPUs + CPU: %.3f ms (%.3f GFLOPS), CPU took %d chunks\n",
		st.TotalSec*1e3, st.GFLOPS, st.CPUChunks)
}
