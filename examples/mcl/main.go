// MCL: Markov clustering of a graph with the expansion step (M·M, an
// SpGEMM whose iterates densify well past device memory) running on
// the out-of-core simulated-GPU engine — the workload of the paper's
// reference [33] (Selvitopi et al., pre-exascale Markov clustering).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/spgemm"
	"repro/spgemm/graph"
)

// blockGraph builds a stochastic block model: k communities of size
// cs, dense inside (pIn), sparse across (pOut).
func blockGraph(k, cs int, pIn, pOut float64, seed int64) (*spgemm.Matrix, error) {
	rng := rand.New(rand.NewSource(seed))
	n := k * cs
	var entries []spgemm.Entry
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u/cs == v/cs {
				p = pIn
			}
			if rng.Float64() < p {
				entries = append(entries,
					spgemm.Entry{Row: int32(u), Col: int32(v), Val: 1},
					spgemm.Entry{Row: int32(v), Col: int32(u), Val: 1})
			}
		}
	}
	return spgemm.FromEntries(n, n, entries)
}

func main() {
	const communities = 8
	adj, err := blockGraph(communities, 64, 0.4, 0.004, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d planted communities\n",
		adj.Rows, adj.Nnz()/2, communities)

	// Expansion runs out-of-core on a small simulated device.
	cfg := spgemm.V100WithMemory(8 << 20)
	mult := func(a, b *spgemm.Matrix) (*spgemm.Matrix, error) {
		opts, err := spgemm.Plan(a, b, cfg)
		if err != nil {
			return nil, err
		}
		c, _, err := spgemm.MultiplyOutOfCore(a, b, cfg, opts)
		return c, err
	}

	res, err := graph.MCL(adj, graph.MCLOptions{Inflation: 2.0, Multiply: mult})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCL converged in %d iterations: %d clusters\n", res.Iters, res.NumClusters)
	fmt.Printf("cluster sizes: %v\n", graph.ClusterSizes(res))

	tri, err := graph.Triangles(adj, mult)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the graph has %d triangles (also via out-of-core SpGEMM)\n", tri)
}
