// AMG: build one level of an algebraic-multigrid hierarchy with
// SpGEMM — the numerical-solver workload behind the paper's first
// motivation (Galerkin coarse-grid operators are triple products
// R·A·P computed with two sparse multiplications).
package main

import (
	"fmt"
	"log"

	"repro/spgemm"
)

// aggregationProlongator builds a simple piecewise-constant
// prolongator P: fine point i belongs to aggregate i/groupSize. This
// is the plain-aggregation AMG transfer operator.
func aggregationProlongator(n, groupSize int) (*spgemm.Matrix, error) {
	coarse := (n + groupSize - 1) / groupSize
	entries := make([]spgemm.Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = spgemm.Entry{Row: int32(i), Col: int32(i / groupSize), Val: 1}
	}
	return spgemm.FromEntries(n, coarse, entries)
}

// transpose computes Rᵀ from P using the library's CSR facilities via
// entries (the restriction operator R = Pᵀ for plain aggregation).
func transpose(p *spgemm.Matrix) (*spgemm.Matrix, error) {
	var entries []spgemm.Entry
	for r := 0; r < p.Rows; r++ {
		cols, vals := p.Row(r)
		for i := range cols {
			entries = append(entries, spgemm.Entry{Row: cols[i], Col: int32(r), Val: vals[i]})
		}
	}
	return spgemm.FromEntries(p.Cols, p.Rows, entries)
}

func main() {
	// Fine-grid operator: a 2-D Laplacian on a 300x300 grid (90k
	// unknowns), the classic AMG test problem.
	a := spgemm.Stencil2D(300, 300)
	fmt.Printf("fine operator A: %d unknowns, %d non-zeros\n", a.Rows, a.Nnz())

	p, err := aggregationProlongator(a.Rows, 4)
	if err != nil {
		log.Fatal(err)
	}
	r, err := transpose(p)
	if err != nil {
		log.Fatal(err)
	}

	cfg := spgemm.V100WithMemory(24 << 20)

	// Galerkin product A_c = R·(A·P), two SpGEMMs on the out-of-core
	// engine.
	opts, err := spgemm.Plan(a, p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ap, st1, err := spgemm.MultiplyOutOfCore(a, p, cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	opts2, err := spgemm.Plan(r, ap, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ac, st2, err := spgemm.MultiplyOutOfCore(r, ap, cfg, opts2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("A·P: %d non-zeros (%.3f ms simulated)\n", ap.Nnz(), st1.TotalSec*1e3)
	fmt.Printf("coarse operator A_c = R·A·P: %d unknowns, %d non-zeros (%.3f ms simulated)\n",
		ac.Rows, ac.Nnz(), st2.TotalSec*1e3)
	fmt.Printf("coarsening factor: %.1fx fewer unknowns, %.1fx fewer non-zeros\n",
		float64(a.Rows)/float64(ac.Rows), float64(a.Nnz())/float64(ac.Nnz()))

	// Sanity: the Galerkin operator of a Laplacian keeps zero row sums
	// away from the boundary (constant vectors stay in the near-null
	// space). Pick an aggregate whose fine points all sit in the grid
	// interior: the point (150, 150) of the 300x300 grid.
	interior := (150*300 + 150) / 4
	cols, vals := ac.Row(interior)
	var sum float64
	for i := range cols {
		sum += vals[i]
	}
	fmt.Printf("row sum of an interior coarse row: %.2e (should be ~0)\n", sum)

	// Cross-check the whole pipeline against the CPU engine.
	apRef, err := spgemm.Multiply(a, p)
	if err != nil {
		log.Fatal(err)
	}
	if !spgemm.Equal(ap, apRef, 1e-9) {
		log.Fatal("A·P mismatch between engines")
	}
	fmt.Println("verified: out-of-core Galerkin product matches the CPU engine")
}
