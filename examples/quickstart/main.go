// Quickstart: build a small sparse matrix, square it out-of-core on
// the simulated GPU, and verify against the multi-core CPU engine.
package main

import (
	"fmt"
	"log"

	"repro/spgemm"
)

func main() {
	// A scale-free graph with 2^12 vertices, ~8 edges each: the kind of
	// input whose square explodes (the paper's motivating workload).
	a := spgemm.RMAT(12, 8, 0.57, 0.19, 0.19, 42)
	fmt.Printf("A: %dx%d, %d non-zeros\n", a.Rows, a.Cols, a.Nnz())
	fmt.Printf("computing A·A needs %d flops\n", spgemm.Flops(a, a))

	// A deliberately tiny simulated device, so A·A is out-of-core.
	cfg := spgemm.V100WithMemory(16 << 20)

	// Plan a chunk grid that fits the device, then run the paper's
	// asynchronous out-of-core pipeline via the engine registry: every
	// implementation is a named spgemm.Engine with one Run signature.
	opts, err := spgemm.Plan(a, a, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned chunk grid: %d row panels x %d column panels\n",
		opts.RowPanels, opts.ColPanels)

	eng, err := spgemm.ByName("gpu")
	if err != nil {
		log.Fatal(err)
	}
	c, report, err := eng.Run(a, a, &spgemm.RunOptions{Device: &cfg, Core: opts})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C = A·A: %d non-zeros (%.1fx the input)\n", c.Nnz(), float64(c.Nnz())/float64(a.Nnz()))
	// Report is the engine-independent view; the concrete stats type
	// still carries the engine-specific fields.
	fmt.Printf("simulated time %.3f ms, %.3f GFLOPS\n", report.Seconds()*1e3, report.Throughput())
	if stats, ok := report.(spgemm.Stats); ok {
		fmt.Printf("%.1f%% of the run spent in PCIe transfers\n", stats.TransferFraction*100)
	}

	// The simulated-GPU result is numerically exact: check it against
	// the real multi-core CPU engine.
	ref, err := spgemm.Multiply(a, a)
	if err != nil {
		log.Fatal(err)
	}
	if !spgemm.Equal(c, ref, 1e-9) {
		log.Fatal("engines disagree!")
	}
	fmt.Println("verified: out-of-core GPU product matches the CPU engine")
}
