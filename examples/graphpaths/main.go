// Graphpaths: count length-2 paths and triangle candidates in a social
// graph via SpGEMM, the graph-analytics workload the paper's
// introduction motivates (A² of an adjacency matrix counts the
// two-hop paths between every vertex pair).
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/spgemm"
	"repro/spgemm/graph"
)

func main() {
	// A LiveJournal-like scale-free graph.
	a := spgemm.RMAT(13, 10, 0.57, 0.19, 0.19, 7)
	fmt.Printf("graph: %d vertices, %d edges\n", a.Rows, a.Nnz())

	// A² on the hybrid CPU-GPU engine: the output (two-hop path counts)
	// is far larger than the input and exceeds the simulated device
	// memory, so the out-of-core machinery is essential.
	cfg := spgemm.V100WithMemory(48 << 20)
	eng, err := spgemm.ByName("hybrid")
	if err != nil {
		log.Fatal(err)
	}
	a2, report, err := eng.Run(a, a, &spgemm.RunOptions{Device: &cfg})
	if err != nil {
		log.Fatal(err)
	}
	stats := report.(spgemm.HybridStats)
	fmt.Printf("A²: %d vertex pairs connected by 2-hop paths\n", a2.Nnz())
	fmt.Printf("hybrid run: %d chunks on GPU, %d on CPU, %.3f ms simulated, %.3f GFLOPS\n",
		stats.GPUChunks, stats.CPUChunks, stats.TotalSec*1e3, stats.GFLOPS)

	// Total number of length-2 paths = sum of all A² entries.
	var totalPaths float64
	for _, v := range a2.Data {
		totalPaths += v
	}
	fmt.Printf("total length-2 paths: %.0f\n", totalPaths)

	// Triangle candidates: vertices v where A²[v][v] > 0 sit on a
	// directed 2-cycle; pairs (u,v) with both A[u][v] != 0 and
	// A²[u][v] > 0 close at least one triangle.
	var triangles float64
	for u := 0; u < a.Rows; u++ {
		cols, _ := a.Row(u)
		p2cols, p2vals := a2.Row(u)
		j := 0
		for _, v := range cols {
			for j < len(p2cols) && p2cols[j] < v {
				j++
			}
			if j < len(p2cols) && p2cols[j] == v {
				triangles += p2vals[j]
			}
		}
	}
	fmt.Printf("directed triangles (closed 2-paths): %.0f\n", triangles)

	// The ten most connected vertex hubs by 2-hop reach.
	type hub struct {
		v     int
		reach int64
	}
	hubs := make([]hub, a.Rows)
	for v := range hubs {
		hubs[v] = hub{v, a2.RowNnz(v)}
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i].reach > hubs[j].reach })
	fmt.Println("top 5 vertices by 2-hop reach:")
	for _, h := range hubs[:5] {
		fmt.Printf("  vertex %5d reaches %d vertices in 2 hops\n", h.v, h.reach)
	}

	// PageRank over the same graph (power iteration, one SpMV per
	// step) and BFS hop distances from the top hub.
	rank, iters, _, err := graph.PageRank(a, 0.85, 1e-10, 200)
	if err != nil {
		log.Fatal(err)
	}
	best := 0
	for v := range rank {
		if rank[v] > rank[best] {
			best = v
		}
	}
	fmt.Printf("PageRank converged in %d iterations; top vertex %d (rank %.5f)\n",
		iters, best, rank[best])

	dist, err := graph.BFS(a, best)
	if err != nil {
		log.Fatal(err)
	}
	reached, maxHops := 0, 0
	for _, d := range dist {
		if d >= 0 {
			reached++
			if d > maxHops {
				maxHops = d
			}
		}
	}
	fmt.Printf("BFS from vertex %d reaches %d vertices (eccentricity %d)\n", best, reached, maxHops)
}
